#include "defense/dnc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "defense/fedavg.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult Dnc::do_aggregate(std::span<const UpdateView> updates,
                                 std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/dnc");
  validate_updates(updates, weights);
  ZKA_CHECK(options_.subsample_dim > 0, "DnC: subsample_dim must be positive");
  ZKA_CHECK(options_.filter_fraction >= 0.0,
            "DnC: filter_fraction %g is negative", options_.filter_fraction);
  ZKA_CHECK(options_.iterations >= 0 && options_.power_iterations > 0,
            "DnC: iterations=%d power_iterations=%d out of range",
            options_.iterations, options_.power_iterations);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  const std::size_t discard = std::min(
      n - 1, static_cast<std::size_t>(std::llround(
                 options_.filter_fraction *
                 static_cast<double>(options_.num_byzantine))));

  std::vector<bool> accepted(n, true);
  std::size_t accepted_count = n;
  // Sorted scores of the most recent iteration, over that iteration's
  // candidate set — what the empty-selection fallback draws its argmin
  // from.
  std::vector<std::pair<double, std::size_t>> scores;
  for (int iter = 0; iter < options_.iterations && accepted_count > 0;
       ++iter) {
    // Every statistic below runs over the *currently accepted* set only:
    // scoring all n rows would let an already-rejected extreme outlier
    // keep dominating the spectral direction and re-absorb the iteration's
    // entire filter budget, so later iterations would never see a fresh
    // candidate to discard.
    std::vector<std::size_t> active;
    active.reserve(accepted_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (accepted[i]) active.push_back(i);
    }
    const std::size_t na = active.size();

    // Random coordinate block.
    const std::size_t b = std::min(options_.subsample_dim, dim);
    std::vector<std::size_t> coords(b);
    if (b == dim) {
      std::iota(coords.begin(), coords.end(), 0);
    } else {
      const auto picked = rng_.sample_without_replacement(dim, b);
      coords.assign(picked.begin(), picked.end());
    }

    // Centered submatrix A [na, b].
    std::vector<double> mean(b, 0.0);
    for (const std::size_t i : active) {
      for (std::size_t j = 0; j < b; ++j) {
        mean[j] += static_cast<double>(updates[i][coords[j]]);
      }
    }
    for (auto& m : mean) m /= static_cast<double>(na);
    std::vector<double> a(na * b);
    for (std::size_t r = 0; r < na; ++r) {
      for (std::size_t j = 0; j < b; ++j) {
        a[r * b + j] =
            static_cast<double>(updates[active[r]][coords[j]]) - mean[j];
      }
    }
    const auto row = [&](std::size_t r) {
      return std::span<const double>(a.data() + r * b, b);
    };

    // Power iteration for the top right singular vector v in R^b.
    std::vector<double> v(b);
    for (std::size_t j = 0; j < b; ++j) {
      v[j] = std::sin(0.37 * static_cast<double>(j + 1)) + 0.011;
    }
    std::vector<double> av(na);
    std::vector<double> vnext(b);
    for (int it = 0; it < options_.power_iterations; ++it) {
      for (std::size_t r = 0; r < na; ++r) av[r] = tensor::dot(row(r), v);
      // v <- A^T (A v), accumulated row by row (same r-ascending order the
      // scalar column loop used).
      std::fill(vnext.begin(), vnext.end(), 0.0);
      for (std::size_t r = 0; r < na; ++r) {
        tensor::axpy(av[r], row(r), vnext);
      }
      const double norm = std::sqrt(tensor::dot(
          std::span<const double>(vnext), std::span<const double>(vnext)));
      v.swap(vnext);
      if (norm < 1e-12) break;  // centered data is degenerate
      for (auto& x : v) x /= norm;
    }

    // Outlier scores: squared projection on v.
    scores.assign(na, {});
    for (std::size_t r = 0; r < na; ++r) {
      const double acc = tensor::dot(row(r), v);
      scores[r] = {acc * acc, active[r]};
    }
    std::sort(scores.begin(), scores.end());
    // Discard the `discard` highest-scoring survivors this iteration (all
    // of them on tiny rounds — the fallback below recovers).
    const std::size_t kill = std::min(discard, na);
    for (std::size_t k = na - kill; k < na; ++k) {
      accepted[scores[k].second] = false;
    }
    accepted_count -= kill;
  }

  AggregationResult result;
  for (std::size_t i = 0; i < n; ++i) {
    if (accepted[i]) result.selected.push_back(i);
  }
  if (result.selected.empty()) {
    // Everything filtered (tiny rounds): fall back to the single
    // lowest-score update of the last scored candidate set to keep the
    // server making progress.
    ZKA_CHECK(!scores.empty(), "DnC: empty selection with no scored iteration");
    result.selected.push_back(scores.front().second);
  }
  // Deliberately unweighted: like mKrum and Bulyan, DnC treats its
  // accepted set as a vetted committee and averages it uniformly —
  // sample-count weighting would let one heavy (or weight-inflating)
  // client dominate the very mean the spectral filter just defended.
  result.model = mean_of(updates, result.selected);
  return result;
}

}  // namespace zka::defense
