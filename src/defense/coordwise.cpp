#include "defense/coordwise.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "tensor/ops.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace zka::defense {

void for_each_sorted_coordinate(
    std::span<const UpdateView> updates,
    const std::function<void(std::size_t, std::span<const float>)>& fn) {
  const std::size_t n = updates.size();
  if (n == 0) return;
  const std::size_t dim = updates.front().size();
  if constexpr (util::kContractsEnabled) {
    // Update-dimension agreement: the tile loads below read dim floats
    // from every row.
    for (std::size_t r = 0; r < n; ++r) {
      ZKA_DCHECK(updates[r].size() == dim,
                 "sorted-coordinate walk: update %zu has %zu coordinates, "
                 "expected %zu",
                 r, updates[r].size(), dim);
    }
  }
  const std::size_t rows = std::bit_ceil(n);
  const std::size_t nblocks = (dim + kCoordBlock - 1) / kCoordBlock;

  auto run_block = [&](std::size_t b) {
    const std::size_t c0 = b * kCoordBlock;
    const std::size_t c1 = std::min(dim, c0 + kCoordBlock);
    const std::size_t width = c1 - c0;
    // Transpose-free load: row r of the tile is just a contiguous slice
    // of update r. Padding rows stay +inf and sort past the real values.
    std::vector<float> tile(rows * width,
                            std::numeric_limits<float>::infinity());
    for (std::size_t r = 0; r < n; ++r) {
      std::copy_n(updates[r].data() + c0, width, tile.data() + r * width);
    }
    tensor::sort_columns(tile.data(), rows, width);
    // Gather each sorted column (stride = width) into a small contiguous
    // buffer for the functor; the first n rows hold the real values.
    std::vector<float> column(n);
    for (std::size_t c = 0; c < width; ++c) {
      for (std::size_t r = 0; r < n; ++r) column[r] = tile[r * width + c];
      fn(c0 + c, std::span<const float>(column));
    }
  };

  if (tensor::kernel_parallelism_enabled() && nblocks > 1 &&
      n * dim >= (std::size_t{1} << 18) &&
      util::global_thread_pool().size() > 1) {
    util::global_thread_pool().parallel_for(nblocks, run_block);
  } else {
    for (std::size_t b = 0; b < nblocks; ++b) run_block(b);
  }
}

}  // namespace zka::defense
