#include "defense/coordwise.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "tensor/ops.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace zka::defense {

void for_each_sorted_coordinate(
    std::span<const UpdateView> updates,
    const std::function<void(std::size_t, std::span<const float>)>& fn) {
  const std::size_t n = updates.size();
  if (n == 0) return;
  const std::size_t dim = updates.front().size();
  if constexpr (util::kContractsEnabled) {
    // Update-dimension agreement: the tile loads below read dim floats
    // from every row.
    for (std::size_t r = 0; r < n; ++r) {
      ZKA_DCHECK(updates[r].size() == dim,
                 "sorted-coordinate walk: update %zu has %zu coordinates, "
                 "expected %zu",
                 r, updates[r].size(), dim);
    }
  }
  const std::size_t rows = std::bit_ceil(n);
  const std::size_t nblocks = (dim + kCoordBlock - 1) / kCoordBlock;

  const bool parallel = tensor::kernel_parallelism_enabled() && nblocks > 1 &&
                        n * dim >= (std::size_t{1} << 18) &&
                        util::global_thread_pool().size() > 1;
  const std::size_t nchunks =
      parallel ? std::min(nblocks, util::global_thread_pool().size())
               : std::size_t{1};

  // Scratch is allocated once up front — one tile plus one gather buffer
  // per chunk — instead of per block inside the parallel region, where
  // repeated allocation contends on the allocator in the round hot loop.
  // Peak footprint is unchanged: only ~pool-size tiles were ever live at
  // once before.
  std::vector<float> tiles(nchunks * rows * kCoordBlock);
  std::vector<float> columns(nchunks * n);

  // Each chunk owns a disjoint contiguous block range and walks it in
  // ascending order, so every coordinate still sees exactly the same tile
  // contents and comparator sequence as the one-allocation-per-block
  // version — bitwise identical for any thread count.
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t per = nblocks / nchunks;
    const std::size_t rem = nblocks % nchunks;
    const std::size_t b0 = chunk * per + std::min(chunk, rem);
    const std::size_t b1 = b0 + per + (chunk < rem ? 1 : 0);
    float* const tile = tiles.data() + chunk * rows * kCoordBlock;
    float* const column = columns.data() + chunk * n;
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t c0 = b * kCoordBlock;
      const std::size_t c1 = std::min(dim, c0 + kCoordBlock);
      const std::size_t width = c1 - c0;
      // Transpose-free load: row r of the tile is just a contiguous slice
      // of update r. Padding rows (and any leftovers from this chunk's
      // previous block) are refilled with +inf and sort past the real
      // values.
      std::fill_n(tile, rows * width,
                  std::numeric_limits<float>::infinity());
      for (std::size_t r = 0; r < n; ++r) {
        std::copy_n(updates[r].data() + c0, width, tile + r * width);
      }
      tensor::sort_columns(tile, rows, width);
      // Gather each sorted column (stride = width) into a small contiguous
      // buffer for the functor; the first n rows hold the real values.
      for (std::size_t c = 0; c < width; ++c) {
        for (std::size_t r = 0; r < n; ++r) column[r] = tile[r * width + c];
        fn(c0 + c, std::span<const float>(column, n));
      }
    }
  };

  if (parallel) {
    util::global_thread_pool().parallel_for(nchunks, run_chunk);
  } else {
    run_chunk(0);
  }
}

}  // namespace zka::defense
