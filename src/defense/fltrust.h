// FLTrust (Cao et al., NDSS 2021) — extension defense.
//
// The server holds a small clean "root" dataset. Each round it trains its
// own reference update from the broadcast global model; every client
// update is then scored by the ReLU-clipped cosine similarity between its
// delta and the server delta (trust score), rescaled to the server delta's
// norm, and averaged with trust-score weights. Clients with nonpositive
// similarity are effectively dropped, which is what DPR measures here.
#pragma once

#include "data/dataset.h"
#include "defense/aggregator.h"
#include "models/models.h"
#include "util/rng.h"

namespace zka::defense {

struct FlTrustOptions {
  std::int64_t local_epochs = 1;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;  // should match the clients' configuration
};

class FlTrust : public Aggregator {
 public:
  /// `root` is the server's clean dataset (typically ~100 samples).
  FlTrust(data::Dataset root, models::ModelFactory factory,
          FlTrustOptions options, std::uint64_t seed);

  void begin_round(std::span<const float> global_model,
                   std::int64_t round) override;
  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return "FLTrust"; }

  /// Trust scores of the last aggregate() (for tests).
  const std::vector<double>& last_trust_scores() const noexcept {
    return last_scores_;
  }

 private:
  data::Dataset root_;
  models::ModelFactory factory_;
  FlTrustOptions options_;
  util::Rng rng_;
  Update global_;         // model broadcast this round
  Update server_update_;  // reference update trained on the root data
  std::vector<double> last_scores_;
};

}  // namespace zka::defense
