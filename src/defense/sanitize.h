// Ingress sanitization: the server's trust boundary for client payloads.
//
// Everything an aggregation rule consumes arrives from clients the server
// cannot audit (the paper's premise — and MPAF-style fake clients control
// both their update bytes and their reported sample counts). This layer
// normalizes that input *once*, at ingestion, so the rules themselves can
// assume finite values and sane weights:
//
//   * admit_updates / admit_update  — every non-finite coordinate (NaN or
//     Inf, which would silently own any mean and corrupt every pairwise
//     distance) is zeroed. Clean rows pass through as views of the
//     original bytes — the common case copies nothing and is bitwise
//     exact.
//   * admit_weights — reported weights are self-declared dataset sizes; a
//     sybil claiming INT64_MAX owns the weighted mean on its own. Weights
//     above median * weight_cap_ratio are clamped to that cap. Negative
//     weights are NOT repaired here: they are a protocol violation and
//     stay for validate_updates to reject.
//
// Options::enabled = false switches the layer off bitwise: every admit_*
// returns its input span untouched, reproducing the paper-faithful
// undefended server for attack studies (see NaNInjectionAttack).
//
// The Aggregator base class owns an Ingress and runs it inside the public
// aggregate/begin_stream/stream_update/stream_replay entry points, in
// front of the per-rule do_* hooks — rules cannot forget to sanitize.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace zka::defense::sanitize {

struct Options {
  /// Master switch. Off = every admit_* is a bitwise pass-through.
  bool enabled = true;
  /// Reported-weight cap as a multiple of the round's median weight.
  /// Ignored when the median is zero (no meaningful scale to clamp to).
  double weight_cap_ratio = 8.0;
};

class Ingress {
 public:
  Ingress() = default;
  explicit Ingress(const Options& options) : options_(options) {}

  const Options& options() const noexcept { return options_; }

  /// Batch form. Rows whose coordinates are all finite are returned as
  /// views of the caller's bytes; rows containing NaN/Inf are copied with
  /// the offending coordinates zeroed. The returned views stay valid
  /// until the next admit_updates call on this Ingress (the caller's
  /// buffers must outlive the aggregation, as for aggregate() itself).
  std::span<const std::span<const float>> admit_updates(
      std::span<const std::span<const float>> updates);

  /// Streaming single-row form; same zeroing contract, same lifetime
  /// (valid until the next admit_update call).
  std::span<const float> admit_update(std::span<const float> update);

  /// Clamps weights above median * weight_cap_ratio down to the cap.
  /// All-clean weight lists pass through as the caller's span.
  std::span<const std::int64_t> admit_weights(
      std::span<const std::int64_t> weights);

  /// Non-finite coordinates zeroed across the lifetime of this Ingress.
  std::size_t zeroed_values() const noexcept { return zeroed_; }
  /// Weights clamped across the lifetime of this Ingress.
  std::size_t clamped_weights() const noexcept { return clamped_; }

 private:
  Options options_;
  // Scratch for the (rare) dirty rows; reused across rounds so the clean
  // path and steady state allocate nothing.
  std::vector<std::vector<float>> row_scratch_;
  std::vector<std::span<const float>> view_scratch_;
  std::vector<float> stream_scratch_;
  std::vector<std::int64_t> weight_scratch_;
  std::vector<std::int64_t> median_scratch_;
  std::size_t zeroed_ = 0;
  std::size_t clamped_ = 0;
};

}  // namespace zka::defense::sanitize
