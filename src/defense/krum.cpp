#include "defense/krum.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "defense/distance.h"
#include "defense/fedavg.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

std::vector<std::size_t> MultiKrum::select(
    std::span<const UpdateView> updates) const {
  const std::size_t n = updates.size();
  ZKA_CHECK(n > 0, "MultiKrum::select: no updates");
  // f/n feasibility: the scores are meaningless once every update could be
  // Byzantine. (The full Blanchard bound n > 2f + 2 is deliberately not
  // enforced; small rounds degrade to fewer neighbors below.)
  ZKA_CHECK(n == 1 || f_ < n,
            "MultiKrum: assumed Byzantine count f=%zu must be < n=%zu", f_, n);
  const std::size_t m = selection_size(n);
  if (n == 1) return {0};
  const std::size_t dim = updates.front().size();

  if (sketch_.enabled_for(n, dim)) {
    const tensor::JlSketch sketch(dim, sketch_.sketch_dim, sketch_.seed);
    const std::vector<float> rows = project_rows(sketch, updates);
    const SketchedSelectionPlan plan = plan_sketched_selection(
        sketched_order(rows, n, sketch_.sketch_dim, f_, m, iterative_), n, f_,
        m, sketch_.recheck_band);
    std::vector<double> sum_all(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      tensor::axpy(1.0, updates[i], sum_all);
    }
    return recheck_selection(
        plan, sum_all, [&](std::size_t i) { return updates[i]; }, dim);
  }

  // Krum needs n - f - 2 >= 1 neighbors; degrade gracefully on tiny rounds.
  const std::size_t neighbors = n > f_ + 2 ? n - f_ - 2 : 1;

  const PairwiseMatrix sq_dist = pairwise_sq_distances(updates);
  std::vector<bool> excluded(n, false);
  std::vector<std::size_t> selected;
  selected.reserve(m);

  if (!iterative_) {
    // One-shot scoring: rank all updates, keep the m lowest scores.
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ranked.emplace_back(krum_score(sq_dist, i, neighbors, excluded), i);
    }
    std::sort(ranked.begin(), ranked.end());
    for (std::size_t k = 0; k < m; ++k) selected.push_back(ranked[k].second);
    std::sort(selected.begin(), selected.end());
    return selected;
  }

  for (std::size_t round = 0; round < m; ++round) {
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (excluded[i]) continue;
      const double score = krum_score(sq_dist, i, neighbors, excluded);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    excluded[best] = true;
    selected.push_back(best);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<std::size_t> MultiKrum::select(
    const std::vector<Update>& updates) const {
  const std::vector<UpdateView> views = as_views(updates);
  return select(std::span<const UpdateView>(views));
}

AggregationResult MultiKrum::aggregate_sketched(
    std::span<const UpdateView> updates) {
  ZKA_PROF_SCOPE("aggregate/mkrum_sketch");
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  const std::size_t m = selection_size(n);
  const tensor::JlSketch sketch(dim, sketch_.sketch_dim, sketch_.seed);
  const std::vector<float> rows = project_rows(sketch, updates);
  const SketchedSelectionPlan plan = plan_sketched_selection(
      sketched_order(rows, n, sketch_.sketch_dim, f_, m, iterative_), n, f_, m,
      sketch_.recheck_band);
  // Index-ascending Σ of all updates — the exact accumulation the streaming
  // path folds per stream_update, which is what makes the two paths
  // bitwise-identical.
  std::vector<double> sum_all(dim, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    tensor::axpy(1.0, updates[i], sum_all);
  }
  return finish_sketched_selection(
      plan, sum_all, [&](std::size_t i) { return updates[i]; }, dim);
}

AggregationResult MultiKrum::do_aggregate(std::span<const UpdateView> updates,
                                       std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/mkrum");
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  ZKA_CHECK(n == 1 || f_ < n,
            "MultiKrum: assumed Byzantine count f=%zu must be < n=%zu", f_, n);
  if (n > 1 && sketch_.enabled_for(n, updates.front().size())) {
    return aggregate_sketched(updates);
  }
  AggregationResult result;
  result.selected = select(updates);
  result.model = mean_of(updates, result.selected);
  return result;
}

void MultiKrum::do_begin_stream(std::size_t dim,
                             std::span<const std::int64_t> weights) {
  ZKA_CHECK(supports_streaming(), "%s: streaming needs sketch_dim > 0",
            name().c_str());
  ZKA_CHECK(!streaming_, "%s: begin_stream during an open stream",
            name().c_str());
  ZKA_CHECK(dim > 0, "%s: empty update dimension", name().c_str());
  const std::size_t n = weights.size();
  ZKA_CHECK(n > 0, "%s: no weights for streaming round", name().c_str());
  ZKA_CHECK(n == 1 || f_ < n,
            "MultiKrum: assumed Byzantine count f=%zu must be < n=%zu", f_, n);
  for (const std::int64_t w : weights) {
    ZKA_CHECK(w >= 0, "%s: negative weight %lld", name().c_str(),
              static_cast<long long>(w));
  }
  streaming_ = true;
  stream_dim_ = dim;
  stream_n_ = n;
  stream_next_ = 0;
  stream_planned_ = false;
  stream_replay_next_ = 0;
  stream_weights_.assign(weights.begin(), weights.end());
  stream_buffered_ = n == 1 || !sketch_.enabled_for(n, dim);
  if (stream_buffered_) {
    stream_buffer_.clear();
    stream_buffer_.reserve(n);
    return;
  }
  stream_sketch_.emplace(dim, sketch_.sketch_dim, sketch_.seed);
  stream_rows_.resize(n * sketch_.sketch_dim);
  stream_scratch_.resize(sketch_.sketch_dim);
  stream_sum_.assign(dim, 0.0);
}

void MultiKrum::do_stream_update(UpdateView update) {
  ZKA_PROF_SCOPE("aggregate/mkrum_stream");
  ZKA_CHECK(streaming_, "%s: stream_update without begin_stream",
            name().c_str());
  ZKA_CHECK(stream_next_ < stream_n_,
            "%s: more updates streamed than weights announced (%zu)",
            name().c_str(), stream_n_);
  ZKA_CHECK(update.size() == stream_dim_,
            "%s: streamed update has %zu coordinates, expected %zu",
            name().c_str(), update.size(), stream_dim_);
  for (const float value : update) {
    ZKA_CHECK(std::isfinite(value), "%s: non-finite value in streamed update %zu",
              name().c_str(), stream_next_);
  }
  if (stream_buffered_) {
    stream_buffer_.emplace_back(update.begin(), update.end());
  } else {
    stream_sketch_->project(
        update, stream_scratch_,
        std::span<float>(stream_rows_.data() + stream_next_ * sketch_.sketch_dim,
                         sketch_.sketch_dim));
    tensor::axpy(1.0, update, std::span<double>(stream_sum_));
  }
  ++stream_next_;
}

std::span<const std::size_t> MultiKrum::stream_replay_request() {
  ZKA_CHECK(streaming_, "%s: stream_replay_request without begin_stream",
            name().c_str());
  ZKA_CHECK(stream_next_ == stream_n_,
            "%s: %zu of %zu announced updates streamed", name().c_str(),
            stream_next_, stream_n_);
  if (stream_buffered_) return {};
  if (!stream_planned_) {
    stream_plan_ = plan_sketched_selection(
        sketched_order(stream_rows_, stream_n_, sketch_.sketch_dim, f_,
                       selection_size(stream_n_), /*iterative=*/false),
        stream_n_, f_, selection_size(stream_n_), sketch_.recheck_band);
    stream_replayed_.resize(stream_plan_.replay.size() * stream_dim_);
    stream_replay_next_ = 0;
    stream_planned_ = true;
  }
  return stream_plan_.replay;
}

void MultiKrum::do_stream_replay(std::size_t index, UpdateView update) {
  ZKA_CHECK(streaming_ && stream_planned_,
            "%s: stream_replay before stream_replay_request", name().c_str());
  ZKA_CHECK(stream_replay_next_ < stream_plan_.replay.size(),
            "%s: more replays than requested (%zu)", name().c_str(),
            stream_plan_.replay.size());
  ZKA_CHECK(index == stream_plan_.replay[stream_replay_next_],
            "%s: replay %zu out of order, expected %zu", name().c_str(), index,
            stream_plan_.replay[stream_replay_next_]);
  ZKA_CHECK(update.size() == stream_dim_,
            "%s: replayed update has %zu coordinates, expected %zu",
            name().c_str(), update.size(), stream_dim_);
  std::copy(update.begin(), update.end(),
            stream_replayed_.begin() +
                static_cast<std::ptrdiff_t>(stream_replay_next_ * stream_dim_));
  ++stream_replay_next_;
}

AggregationResult MultiKrum::finish_stream() {
  ZKA_CHECK(streaming_, "%s: finish_stream without begin_stream",
            name().c_str());
  ZKA_CHECK(stream_next_ == stream_n_,
            "%s: %zu of %zu announced updates streamed", name().c_str(),
            stream_next_, stream_n_);
  if (stream_buffered_) {
    const std::vector<UpdateView> views = as_views(stream_buffer_);
    AggregationResult result =
        aggregate(std::span<const UpdateView>(views),
                  std::span<const std::int64_t>(stream_weights_));
    reset_stream();
    return result;
  }
  ZKA_CHECK(stream_planned_,
            "%s: finish_stream before stream_replay_request", name().c_str());
  ZKA_CHECK(stream_replay_next_ == stream_plan_.replay.size(),
            "%s: %zu of %zu requested replays served", name().c_str(),
            stream_replay_next_, stream_plan_.replay.size());
  const auto full_row = [&](std::size_t i) -> UpdateView {
    const auto it = std::lower_bound(stream_plan_.replay.begin(),
                                     stream_plan_.replay.end(), i);
    ZKA_CHECK(it != stream_plan_.replay.end() && *it == i,
              "%s: full row %zu was never replayed", name().c_str(), i);
    const std::size_t pos =
        static_cast<std::size_t>(it - stream_plan_.replay.begin());
    return UpdateView(stream_replayed_.data() + pos * stream_dim_, stream_dim_);
  };
  AggregationResult result = finish_sketched_selection(
      stream_plan_, stream_sum_, full_row, stream_dim_);
  reset_stream();
  return result;
}

void MultiKrum::reset_stream() {
  streaming_ = false;
  stream_buffered_ = false;
  stream_planned_ = false;
  stream_dim_ = 0;
  stream_n_ = 0;
  stream_next_ = 0;
  stream_replay_next_ = 0;
  stream_sketch_.reset();
  // clear() only: capacity stays with the aggregator so the next round's
  // begin_stream reuses it instead of reallocating inside the round loop.
  stream_weights_.clear();
  stream_rows_.clear();
  stream_sum_.clear();
  stream_scratch_.clear();
  stream_buffer_.clear();
  stream_replayed_.clear();
  stream_plan_ = {};
}

}  // namespace zka::defense
