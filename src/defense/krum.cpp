#include "defense/krum.h"

#include <algorithm>
#include <limits>

#include "defense/distance.h"
#include "defense/fedavg.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

std::vector<std::size_t> MultiKrum::select(
    std::span<const UpdateView> updates) const {
  const std::size_t n = updates.size();
  ZKA_CHECK(n > 0, "MultiKrum::select: no updates");
  // f/n feasibility: the scores are meaningless once every update could be
  // Byzantine. (The full Blanchard bound n > 2f + 2 is deliberately not
  // enforced; small rounds degrade to fewer neighbors below.)
  ZKA_CHECK(n == 1 || f_ < n,
            "MultiKrum: assumed Byzantine count f=%zu must be < n=%zu", f_, n);
  std::size_t m = m_ == 0 ? (n > f_ ? n - f_ : 1) : m_;
  m = std::min(m, n);
  if (n == 1) return {0};
  // Krum needs n - f - 2 >= 1 neighbors; degrade gracefully on tiny rounds.
  const std::size_t neighbors = n > f_ + 2 ? n - f_ - 2 : 1;

  const PairwiseMatrix sq_dist = pairwise_sq_distances(updates);
  std::vector<bool> excluded(n, false);
  std::vector<std::size_t> selected;
  selected.reserve(m);

  if (!iterative_) {
    // One-shot scoring: rank all updates, keep the m lowest scores.
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ranked.emplace_back(krum_score(sq_dist, i, neighbors, excluded), i);
    }
    std::sort(ranked.begin(), ranked.end());
    for (std::size_t k = 0; k < m; ++k) selected.push_back(ranked[k].second);
    std::sort(selected.begin(), selected.end());
    return selected;
  }

  for (std::size_t round = 0; round < m; ++round) {
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (excluded[i]) continue;
      const double score = krum_score(sq_dist, i, neighbors, excluded);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    excluded[best] = true;
    selected.push_back(best);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<std::size_t> MultiKrum::select(
    const std::vector<Update>& updates) const {
  const std::vector<UpdateView> views = as_views(updates);
  return select(std::span<const UpdateView>(views));
}

AggregationResult MultiKrum::aggregate(std::span<const UpdateView> updates,
                                       std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/mkrum");
  validate_updates(updates, weights);
  AggregationResult result;
  result.selected = select(updates);
  result.model = mean_of(updates, result.selected);
  return result;
}

}  // namespace zka::defense
