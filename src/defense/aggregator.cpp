#include "defense/aggregator.h"

#include <cmath>
#include <stdexcept>

namespace zka::defense {

AggregationResult Aggregator::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  const std::vector<UpdateView> views = as_views(updates);
  return aggregate(std::span<const UpdateView>(views),
                   std::span<const std::int64_t>(weights));
}

std::vector<UpdateView> as_views(const std::vector<Update>& updates) {
  std::vector<UpdateView> views;
  views.reserve(updates.size());
  for (const Update& u : updates) views.emplace_back(u);
  return views;
}

void validate_updates(std::span<const UpdateView> updates,
                      std::span<const std::int64_t> weights) {
  if (updates.empty()) {
    throw std::invalid_argument("aggregate: no updates submitted");
  }
  if (weights.size() != updates.size()) {
    throw std::invalid_argument("aggregate: weights/updates size mismatch");
  }
  const std::size_t dim = updates.front().size();
  if (dim == 0) throw std::invalid_argument("aggregate: empty update");
  for (const UpdateView u : updates) {
    if (u.size() != dim) {
      throw std::invalid_argument("aggregate: updates have differing sizes");
    }
    // Failure injection guard: a single NaN/Inf coordinate would silently
    // poison mean-based rules and corrupt Krum distances, so refuse it at
    // the server boundary (a real deployment would drop the client).
    for (const float value : u) {
      if (!std::isfinite(value)) {
        throw std::invalid_argument("aggregate: non-finite update value");
      }
    }
  }
  for (const std::int64_t w : weights) {
    if (w < 0) throw std::invalid_argument("aggregate: negative weight");
  }
}

}  // namespace zka::defense
