#include "defense/aggregator.h"

#include "util/check.h"

namespace zka::defense {

AggregationResult Aggregator::aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_CHECK(weights.empty() || weights.size() == updates.size(),
            "aggregate: %zu weights for %zu updates", weights.size(),
            updates.size());
  return do_aggregate(ingress_.admit_updates(updates),
                      ingress_.admit_weights(weights));
}

// zka-lint: allow(A4) -- pure delegation; the span overload sanitizes and
// the do_aggregate hook validates
AggregationResult Aggregator::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  const std::vector<UpdateView> views = as_views(updates);
  return aggregate(std::span<const UpdateView>(views),
                   std::span<const std::int64_t>(weights));
}

void Aggregator::begin_stream(std::size_t dim,
                              std::span<const std::int64_t> weights) {
  do_begin_stream(dim, ingress_.admit_weights(weights));
}

void Aggregator::stream_update(UpdateView update) {
  do_stream_update(ingress_.admit_update(update));
}

void Aggregator::stream_replay(std::size_t index, UpdateView update) {
  // Same admission as pass 1: sanitization is deterministic, so the rule
  // sees bit-identical rows across the two passes.
  do_stream_replay(index, ingress_.admit_update(update));
}

void Aggregator::do_begin_stream(std::size_t dim,
                                 std::span<const std::int64_t> weights) {
  (void)dim;
  (void)weights;
  ZKA_CHECK(false, "%s does not support streaming ingestion", name().c_str());
}

void Aggregator::do_stream_update(UpdateView update) {
  (void)update;
  ZKA_CHECK(false, "%s does not support streaming ingestion", name().c_str());
}

void Aggregator::do_stream_replay(std::size_t index, UpdateView update) {
  (void)index;
  (void)update;
  ZKA_CHECK(false, "%s never requests streaming replays", name().c_str());
}

AggregationResult Aggregator::finish_stream() {
  ZKA_CHECK(false, "%s does not support streaming ingestion", name().c_str());
  return {};
}

std::vector<UpdateView> as_views(const std::vector<Update>& updates) {
  std::vector<UpdateView> views;
  views.reserve(updates.size());
  for (const Update& u : updates) views.emplace_back(u);
  return views;
}

void validate_updates(std::span<const UpdateView> updates,
                      std::span<const std::int64_t> weights) {
  ZKA_CHECK(!updates.empty(), "aggregate: no updates submitted");
  ZKA_CHECK(weights.size() == updates.size(),
            "aggregate: %zu weights for %zu updates", weights.size(),
            updates.size());
  const std::size_t dim = updates.front().size();
  ZKA_CHECK(dim > 0, "aggregate: empty update");
  for (std::size_t k = 0; k < updates.size(); ++k) {
    const UpdateView u = updates[k];
    ZKA_CHECK(u.size() == dim,
              "aggregate: update %zu has %zu coordinates, expected %zu", k,
              u.size(), dim);
  }
  // No per-value finiteness loop here: NaN/Inf hygiene is the ingress
  // layer's job (defense/sanitize.h), enforced by the Aggregator entry
  // points before any rule runs. Keeping it out of the shape contract is
  // what lets sanitize-off runs reproduce the undefended server.
  for (const std::int64_t w : weights) {
    ZKA_CHECK(w >= 0, "aggregate: negative weight %lld",
              static_cast<long long>(w));
  }
}

}  // namespace zka::defense
