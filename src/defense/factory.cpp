#include <stdexcept>

#include "defense/aggregator.h"
#include "defense/bulyan.h"
#include "defense/centered_clip.h"
#include "defense/dnc.h"
#include "defense/fedavg.h"
#include "defense/foolsgold.h"
#include "defense/geometric_median.h"
#include "defense/krum.h"
#include "defense/norm_clip.h"
#include "defense/statistic.h"

namespace zka::defense {

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            std::size_t num_byzantine) {
  AggregatorOptions options;
  options.num_byzantine = num_byzantine;
  return make_aggregator(name, options);
}

namespace {

std::unique_ptr<Aggregator> with_sanitize(std::unique_ptr<Aggregator> agg,
                                          const AggregatorOptions& options) {
  sanitize::Options ingress;
  ingress.enabled = options.sanitize;
  ingress.weight_cap_ratio = options.sanitize_weight_cap_ratio;
  agg->set_sanitize(ingress);
  return agg;
}

std::unique_ptr<Aggregator> make_rule(const std::string& name,
                                      const AggregatorOptions& options) {
  const std::size_t f = options.num_byzantine;
  const SketchOptions sketch{options.sketch_dim, options.sketch_seed,
                             options.recheck_band};
  if (name == "fedavg") return std::make_unique<FedAvg>();
  if (name == "median") {
    return std::make_unique<Median>(options.memory_budget_bytes);
  }
  if (name == "trmean") {
    return std::make_unique<TrimmedMean>(f, options.memory_budget_bytes);
  }
  if (name == "krum") {
    return std::make_unique<MultiKrum>(f, 1, /*iterative=*/false, sketch);
  }
  if (name == "mkrum") {
    return std::make_unique<MultiKrum>(f, 0, /*iterative=*/false, sketch);
  }
  if (name == "bulyan") return std::make_unique<Bulyan>(f, sketch);
  if (name == "foolsgold") return std::make_unique<FoolsGold>();
  if (name == "normclip") return std::make_unique<NormClipping>();
  if (name == "geomedian") return std::make_unique<GeometricMedian>();
  if (name == "centeredclip") return std::make_unique<CenteredClipping>();
  if (name == "dnc") {
    DncOptions dnc;
    dnc.num_byzantine = f;
    return std::make_unique<Dnc>(dnc);
  }
  if (name == "fltrust") {
    throw std::invalid_argument(
        "fltrust needs a root dataset: construct defense::FlTrust directly "
        "and pass it via SimulationConfig::custom_defense");
  }
  throw std::invalid_argument("unknown aggregator: " + name);
}

}  // namespace

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            const AggregatorOptions& options) {
  return with_sanitize(make_rule(name, options), options);
}

}  // namespace zka::defense
