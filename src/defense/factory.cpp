#include <stdexcept>

#include "defense/aggregator.h"
#include "defense/bulyan.h"
#include "defense/centered_clip.h"
#include "defense/dnc.h"
#include "defense/fedavg.h"
#include "defense/foolsgold.h"
#include "defense/geometric_median.h"
#include "defense/krum.h"
#include "defense/norm_clip.h"
#include "defense/statistic.h"

namespace zka::defense {

std::unique_ptr<Aggregator> make_aggregator(const std::string& name,
                                            std::size_t num_byzantine) {
  if (name == "fedavg") return std::make_unique<FedAvg>();
  if (name == "median") return std::make_unique<Median>();
  if (name == "trmean") return std::make_unique<TrimmedMean>(num_byzantine);
  if (name == "krum") return std::make_unique<MultiKrum>(num_byzantine, 1);
  if (name == "mkrum") return std::make_unique<MultiKrum>(num_byzantine);
  if (name == "bulyan") return std::make_unique<Bulyan>(num_byzantine);
  if (name == "foolsgold") return std::make_unique<FoolsGold>();
  if (name == "normclip") return std::make_unique<NormClipping>();
  if (name == "geomedian") return std::make_unique<GeometricMedian>();
  if (name == "centeredclip") return std::make_unique<CenteredClipping>();
  if (name == "dnc") {
    DncOptions options;
    options.num_byzantine = num_byzantine;
    return std::make_unique<Dnc>(options);
  }
  if (name == "fltrust") {
    throw std::invalid_argument(
        "fltrust needs a root dataset: construct defense::FlTrust directly "
        "and pass it via SimulationConfig::custom_defense");
  }
  throw std::invalid_argument("unknown aggregator: " + name);
}

}  // namespace zka::defense
