#include "defense/geometric_median.h"

#include <algorithm>
#include <cmath>

#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult GeometricMedian::do_aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/geomedian");
  validate_updates(updates, weights);
  ZKA_CHECK(max_iterations_ > 0 && smoothing_ > 0.0 && tolerance_ >= 0.0,
            "GeometricMedian: bad config (max_iterations=%d, tolerance=%g, "
            "smoothing=%g)",
            max_iterations_, tolerance_, smoothing_);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Start from the weighted arithmetic mean.
  double total_weight = 0.0;
  for (const auto w : weights) total_weight += static_cast<double>(w);
  std::vector<double> coeffs(n);
  for (std::size_t k = 0; k < n; ++k) {
    coeffs[k] = total_weight > 0.0
                    ? static_cast<double>(weights[k]) / total_weight
                    : 1.0 / static_cast<double>(n);
  }
  std::vector<double> point(dim);
  tensor::weighted_sum(updates, coeffs, point);

  std::vector<double> next(dim);
  last_iterations_ = 0;
  for (int iter = 0; iter < max_iterations_; ++iter) {
    ++last_iterations_;
    // Weiszfeld step: weighted average with weights w_k / dist_k.
    double denom = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double sq = tensor::squared_distance(updates[k], point);
      const double dist = std::max(std::sqrt(sq), smoothing_);
      coeffs[k] =
          (total_weight > 0.0 ? static_cast<double>(weights[k]) : 1.0) / dist;
      denom += coeffs[k];
    }
    tensor::weighted_sum(updates, coeffs, next);
    for (std::size_t i = 0; i < dim; ++i) next[i] /= denom;
    const double movement = tensor::squared_distance(
        std::span<const double>(next), std::span<const double>(point));
    point.swap(next);
    if (std::sqrt(movement) < tolerance_) break;
  }

  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(point[i]);
  }
  return result;
}

}  // namespace zka::defense
