#include "defense/geometric_median.h"

#include <cmath>

#include "util/stats.h"

namespace zka::defense {

AggregationResult GeometricMedian::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  // Start from the weighted arithmetic mean.
  double total_weight = 0.0;
  for (const auto w : weights) total_weight += static_cast<double>(w);
  std::vector<double> point(dim, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double w =
        total_weight > 0.0 ? weights[k] / total_weight : 1.0 / n;
    for (std::size_t i = 0; i < dim; ++i) point[i] += w * updates[k][i];
  }

  std::vector<double> next(dim);
  last_iterations_ = 0;
  for (int iter = 0; iter < max_iterations_; ++iter) {
    ++last_iterations_;
    // Weiszfeld step: weighted average with weights w_k / dist_k.
    double denom = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      double sq = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d = updates[k][i] - point[i];
        sq += d * d;
      }
      const double dist = std::max(std::sqrt(sq), smoothing_);
      const double w = (total_weight > 0.0 ? weights[k] : 1.0) / dist;
      denom += w;
      for (std::size_t i = 0; i < dim; ++i) next[i] += w * updates[k][i];
    }
    double movement = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      next[i] /= denom;
      const double d = next[i] - point[i];
      movement += d * d;
    }
    point.swap(next);
    if (std::sqrt(movement) < tolerance_) break;
  }

  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(point[i]);
  }
  return result;
}

}  // namespace zka::defense
