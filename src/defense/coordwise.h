// Cache-blocked coordinate-wise driver for the statistic defenses.
//
// Median, trimmed mean and Bulyan all run an order statistic over the n
// client values of each coordinate. Updates are stored row-major (one
// client = one contiguous vector), so the naive per-coordinate gather
// strides by `dim` floats — with 100k-coordinate updates every access is a
// fresh cache line and the pass is latency-bound. On top of that, a
// per-coordinate std::sort of ~n floats costs hundreds of nanoseconds and
// is repeated `dim` times.
//
// This driver transposes a block of kCoordBlock coordinates into an
// L2-resident row-major tile (rows = clients, padded to a power of two
// with +inf) and sorts *all columns of the tile at once* with a Batcher
// odd-even merge network: each comparator is an elementwise min/max sweep
// across the tile row pair, which the autovectorizer lowers to packed
// min/max over many columns per instruction. The functor then receives
// each coordinate's values as a contiguous, ascending-sorted span.
//
// The network's comparator sequence depends only on the (padded) client
// count and block boundaries are a fixed function of `dim`, so the pass
// is bitwise identical for any thread count. Blocks fan out over the
// thread pool in contiguous per-chunk ranges, each chunk reusing one
// preallocated tile; each block writes a disjoint output range.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "defense/aggregator.h"

namespace zka::defense {

/// Coordinates per transposed tile. 512 coords × up to 128 padded clients
/// × 4 bytes ≈ 256 KiB worst case — L2-resident alongside the source
/// lines; the common n ≤ 64 case stays at or under 128 KiB.
inline constexpr std::size_t kCoordBlock = 512;

/// Calls fn(coord, values) for every coordinate in [0, dim), where
/// `values` holds the n client values of that coordinate contiguously,
/// sorted ascending. The span is only valid for the duration of the call;
/// the functor must write its result elsewhere (typically out[coord]).
/// Parallel over coordinate blocks when kernel parallelism is enabled.
void for_each_sorted_coordinate(
    std::span<const UpdateView> updates,
    const std::function<void(std::size_t, std::span<const float>)>& fn);

}  // namespace zka::defense
