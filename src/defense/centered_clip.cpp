#include "defense/centered_clip.h"

#include <cmath>

#include "defense/statistic.h"
#include "util/stats.h"

namespace zka::defense {

AggregationResult CenteredClipping::aggregate(
    const std::vector<Update>& updates,
    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  if (center_.size() != dim) {
    // First round (or model size changed): seed the center with the
    // coordinate-wise median, a robust starting point.
    Median median_rule;
    center_ = median_rule.aggregate(updates, weights).model;
  }

  std::vector<double> norms(n);
  for (std::size_t k = 0; k < n; ++k) {
    norms[k] = util::l2_distance(updates[k], center_);
  }
  last_tau_ = tau_ > 0.0 ? tau_ : util::median(std::vector<double>(norms));

  std::vector<double> correction(dim, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double scale =
        (norms[k] > last_tau_ && norms[k] > 0.0) ? last_tau_ / norms[k] : 1.0;
    for (std::size_t i = 0; i < dim; ++i) {
      correction[i] += scale * (static_cast<double>(updates[k][i]) -
                                center_[i]);
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    center_[i] += static_cast<float>(correction[i] / static_cast<double>(n));
  }

  AggregationResult result;
  result.model = center_;
  return result;
}

}  // namespace zka::defense
