#include "defense/centered_clip.h"

#include <cmath>

#include "defense/statistic.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/stats.h"

namespace zka::defense {

AggregationResult CenteredClipping::do_aggregate(
    std::span<const UpdateView> updates,
    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/centeredclip");
  validate_updates(updates, weights);
  ZKA_CHECK(std::isfinite(tau_), "CenteredClipping: tau %g is not finite",
            tau_);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();

  if (center_.size() != dim) {
    // First round (or model size changed): seed the center with the
    // coordinate-wise median, a robust starting point.
    Median median_rule;
    center_ = median_rule.aggregate(updates, weights).model;
  }

  std::vector<double> norms(n);
  for (std::size_t k = 0; k < n; ++k) {
    norms[k] = std::sqrt(tensor::squared_distance(updates[k], center_));
  }
  last_tau_ = tau_ > 0.0 ? tau_ : util::median(std::vector<double>(norms));

  // sum_k s_k (u_k - center) = sum_k s_k u_k - S * center.
  std::vector<double> scales(n);
  double scale_total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    scales[k] =
        (norms[k] > last_tau_ && norms[k] > 0.0) ? last_tau_ / norms[k] : 1.0;
    scale_total += scales[k];
  }
  std::vector<double> correction(dim);
  tensor::weighted_sum(updates, scales, correction);
  for (std::size_t i = 0; i < dim; ++i) {
    correction[i] -= scale_total * static_cast<double>(center_[i]);
    center_[i] += static_cast<float>(correction[i] / static_cast<double>(n));
  }

  AggregationResult result;
  result.model = center_;
  return result;
}

}  // namespace zka::defense
