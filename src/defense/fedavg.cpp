#include "defense/fedavg.h"

#include <cmath>
#include <stdexcept>

namespace zka::defense {

void validate_updates(const std::vector<Update>& updates,
                      const std::vector<std::int64_t>& weights) {
  if (updates.empty()) {
    throw std::invalid_argument("aggregate: no updates submitted");
  }
  if (weights.size() != updates.size()) {
    throw std::invalid_argument("aggregate: weights/updates size mismatch");
  }
  const std::size_t dim = updates.front().size();
  if (dim == 0) throw std::invalid_argument("aggregate: empty update");
  for (const Update& u : updates) {
    if (u.size() != dim) {
      throw std::invalid_argument("aggregate: updates have differing sizes");
    }
    // Failure injection guard: a single NaN/Inf coordinate would silently
    // poison mean-based rules and corrupt Krum distances, so refuse it at
    // the server boundary (a real deployment would drop the client).
    for (const float value : u) {
      if (!std::isfinite(value)) {
        throw std::invalid_argument("aggregate: non-finite update value");
      }
    }
  }
  for (const std::int64_t w : weights) {
    if (w < 0) throw std::invalid_argument("aggregate: negative weight");
  }
}

AggregationResult FedAvg::aggregate(const std::vector<Update>& updates,
                                    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  double total = 0.0;
  for (const std::int64_t w : weights) total += static_cast<double>(w);
  const std::size_t dim = updates.front().size();
  std::vector<double> acc(dim, 0.0);
  if (total <= 0.0) {
    // All-zero weights degenerate to the unweighted mean.
    for (const Update& u : updates) {
      for (std::size_t i = 0; i < dim; ++i) acc[i] += u[i];
    }
    for (auto& a : acc) a /= static_cast<double>(updates.size());
  } else {
    for (std::size_t k = 0; k < updates.size(); ++k) {
      const double w = static_cast<double>(weights[k]) / total;
      for (std::size_t i = 0; i < dim; ++i) acc[i] += w * updates[k][i];
    }
  }
  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(acc[i]);
  }
  return result;
}

Update mean_of(const std::vector<Update>& updates,
               const std::vector<std::size_t>& subset) {
  if (subset.empty()) throw std::invalid_argument("mean_of: empty subset");
  const std::size_t dim = updates.front().size();
  std::vector<double> acc(dim, 0.0);
  for (const std::size_t k : subset) {
    const Update& u = updates.at(k);
    for (std::size_t i = 0; i < dim; ++i) acc[i] += u[i];
  }
  Update mean(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i] / static_cast<double>(subset.size()));
  }
  return mean;
}

}  // namespace zka::defense
