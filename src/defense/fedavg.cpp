#include "defense/fedavg.h"


#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

std::vector<double> fedavg_coefficients(
    std::span<const std::int64_t> weights) {
  double total = 0.0;
  for (const std::int64_t w : weights) total += static_cast<double>(w);
  std::vector<double> coeffs(weights.size());
  if (total <= 0.0) {
    // All-zero weights degenerate to the unweighted mean.
    for (auto& c : coeffs) c = 1.0 / static_cast<double>(weights.size());
  } else {
    for (std::size_t k = 0; k < weights.size(); ++k) {
      coeffs[k] = static_cast<double>(weights[k]) / total;
    }
  }
  return coeffs;
}

AggregationResult FedAvg::do_aggregate(std::span<const UpdateView> updates,
                                    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/fedavg");
  validate_updates(updates, weights);
  const std::size_t dim = updates.front().size();
  const std::vector<double> coeffs = fedavg_coefficients(weights);
  std::vector<double> acc(dim);
  tensor::weighted_sum(updates, coeffs, acc);
  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(acc[i]);
  }
  return result;
}

void FedAvg::do_begin_stream(std::size_t dim,
                          std::span<const std::int64_t> weights) {
  ZKA_CHECK(!streaming_, "FedAvg: begin_stream during an open stream");
  ZKA_CHECK(dim > 0, "FedAvg: empty update dimension");
  ZKA_CHECK(!weights.empty(), "FedAvg: no weights for streaming round");
  for (const std::int64_t w : weights) {
    ZKA_CHECK(w >= 0, "FedAvg: negative weight %lld",
              static_cast<long long>(w));
  }
  stream_coeffs_ = fedavg_coefficients(weights);
  stream_acc_.assign(dim, 0.0);
  stream_next_ = 0;
  streaming_ = true;
}

void FedAvg::do_stream_update(UpdateView update) {
  ZKA_PROF_SCOPE("aggregate/fedavg_stream");
  ZKA_CHECK(streaming_, "FedAvg: stream_update without begin_stream");
  ZKA_CHECK(stream_next_ < stream_coeffs_.size(),
            "FedAvg: more updates streamed than weights announced (%zu)",
            stream_coeffs_.size());
  ZKA_CHECK(update.size() == stream_acc_.size(),
            "FedAvg: streamed update has %zu coordinates, expected %zu",
            update.size(), stream_acc_.size());
  // Finiteness is the ingress layer's job (defense/sanitize.h), applied by
  // Aggregator::stream_update before this hook runs.
  tensor::axpy(stream_coeffs_[stream_next_], update,
               std::span<double>(stream_acc_));
  ++stream_next_;
}

AggregationResult FedAvg::finish_stream() {
  ZKA_CHECK(streaming_, "FedAvg: finish_stream without begin_stream");
  ZKA_CHECK(stream_next_ == stream_coeffs_.size(),
            "FedAvg: %zu of %zu announced updates streamed", stream_next_,
            stream_coeffs_.size());
  AggregationResult result;
  result.model.resize(stream_acc_.size());
  for (std::size_t i = 0; i < stream_acc_.size(); ++i) {
    result.model[i] = static_cast<float>(stream_acc_[i]);
  }
  streaming_ = false;
  stream_coeffs_.clear();
  // clear() only: the capacity stays with the aggregator so the next
  // round's begin_stream assign() reuses it instead of reallocating dim
  // doubles inside the round hot loop. The accumulator lives exactly as
  // long as the aggregator either way.
  stream_acc_.clear();
  return result;
}

Update mean_of(std::span<const UpdateView> updates,
               const std::vector<std::size_t>& subset) {
  ZKA_CHECK(!subset.empty(), "mean_of: empty subset");
  ZKA_CHECK(!updates.empty(), "mean_of: no updates");
  const std::size_t dim = updates.front().size();
  std::vector<UpdateView> rows;
  rows.reserve(subset.size());
  for (const std::size_t k : subset) {
    ZKA_CHECK(k < updates.size(), "mean_of: index %zu out of %zu updates", k,
              updates.size());
    rows.push_back(updates[k]);
  }
  const std::vector<double> ones(subset.size(), 1.0);
  std::vector<double> acc(dim);
  tensor::weighted_sum(rows, ones, acc);
  Update mean(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i] / static_cast<double>(subset.size()));
  }
  return mean;
}

}  // namespace zka::defense
