#include "defense/fedavg.h"

#include "tensor/reduce.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult FedAvg::aggregate(std::span<const UpdateView> updates,
                                    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/fedavg");
  validate_updates(updates, weights);
  double total = 0.0;
  for (const std::int64_t w : weights) total += static_cast<double>(w);
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().size();
  std::vector<double> coeffs(n);
  if (total <= 0.0) {
    // All-zero weights degenerate to the unweighted mean.
    for (auto& c : coeffs) c = 1.0 / static_cast<double>(n);
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      coeffs[k] = static_cast<double>(weights[k]) / total;
    }
  }
  std::vector<double> acc(dim);
  tensor::weighted_sum(updates, coeffs, acc);
  AggregationResult result;
  result.model.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    result.model[i] = static_cast<float>(acc[i]);
  }
  return result;
}

Update mean_of(std::span<const UpdateView> updates,
               const std::vector<std::size_t>& subset) {
  ZKA_CHECK(!subset.empty(), "mean_of: empty subset");
  ZKA_CHECK(!updates.empty(), "mean_of: no updates");
  const std::size_t dim = updates.front().size();
  std::vector<UpdateView> rows;
  rows.reserve(subset.size());
  for (const std::size_t k : subset) {
    ZKA_CHECK(k < updates.size(), "mean_of: index %zu out of %zu updates", k,
              updates.size());
    rows.push_back(updates[k]);
  }
  const std::vector<double> ones(subset.size(), 1.0);
  std::vector<double> acc(dim);
  tensor::weighted_sum(rows, ones, acc);
  Update mean(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] = static_cast<float>(acc[i] / static_cast<double>(subset.size()));
  }
  return mean;
}

}  // namespace zka::defense
