// DnC — Divide-and-Conquer spectral defense (Shejwalkar & Houmansadr,
// NDSS 2021; the defense proposed alongside the Min-Max attack) —
// extension defense.
//
// Each filtering iteration subsamples a random block of coordinates,
// centers the *currently accepted* updates there, finds the dominant
// right singular direction by power iteration, scores each survivor by
// its squared projection onto it, and discards the c*f highest-scoring
// ones — so every iteration's filter budget lands on fresh candidates
// instead of re-discarding the same extreme outlier. The final accepted
// set is their unweighted mean (a vetted committee, like mKrum/Bulyan);
// if tiny rounds filter everything, the single lowest-score update of
// the last iteration is selected as a fallback.
#pragma once

#include "defense/aggregator.h"
#include "util/rng.h"

namespace zka::defense {

struct DncOptions {
  std::size_t num_byzantine = 2;   // f
  double filter_fraction = 1.0;    // c: discard c*f per iteration
  std::size_t subsample_dim = 8192;  // b: coordinates per iteration
  int iterations = 3;
  int power_iterations = 30;
};

class Dnc : public Aggregator {
 public:
  explicit Dnc(DncOptions options, std::uint64_t seed = 0xd4c)
      : options_(options), rng_(seed) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return "DnC"; }

 private:
  DncOptions options_;
  util::Rng rng_;
};

}  // namespace zka::defense
