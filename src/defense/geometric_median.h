// Geometric median aggregation (RFA, Pillutla et al.) — extension defense.
// Computes the smoothed Weiszfeld fixed point of the updates: the point
// minimizing the sum of Euclidean distances, which is robust to a minority
// of arbitrarily placed outliers.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class GeometricMedian : public Aggregator {
 public:
  explicit GeometricMedian(int max_iterations = 50, double tolerance = 1e-6,
                           double smoothing = 1e-8)
      : max_iterations_(max_iterations), tolerance_(tolerance),
        smoothing_(smoothing) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "GeoMedian"; }

  /// Iterations actually used by the last aggregate() (for tests).
  int last_iterations() const noexcept { return last_iterations_; }

 private:
  int max_iterations_;
  double tolerance_;
  double smoothing_;
  int last_iterations_ = 0;
};

}  // namespace zka::defense
