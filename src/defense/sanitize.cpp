#include "defense/sanitize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace zka::defense::sanitize {

namespace {

bool all_finite(std::span<const float> row) {
  for (const float v : row) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

std::span<const std::span<const float>> Ingress::admit_updates(
    std::span<const std::span<const float>> updates) {
  if (!options_.enabled || updates.empty()) return updates;
  bool any_dirty = false;
  for (const auto row : updates) {
    if (!all_finite(row)) {
      any_dirty = true;
      break;
    }
  }
  if (!any_dirty) return updates;  // bitwise pass-through, no copies
  view_scratch_.clear();
  view_scratch_.reserve(updates.size());
  if (row_scratch_.size() < updates.size()) {
    row_scratch_.resize(updates.size());
  }
  std::size_t next_scratch = 0;
  for (const auto row : updates) {
    if (all_finite(row)) {
      view_scratch_.push_back(row);
      continue;
    }
    std::vector<float>& copy = row_scratch_[next_scratch++];
    copy.assign(row.begin(), row.end());
    for (float& v : copy) {
      if (!std::isfinite(v)) {
        v = 0.0f;
        ++zeroed_;
      }
    }
    view_scratch_.emplace_back(copy);
  }
  return view_scratch_;
}

std::span<const float> Ingress::admit_update(std::span<const float> update) {
  if (!options_.enabled || all_finite(update)) return update;
  stream_scratch_.assign(update.begin(), update.end());
  for (float& v : stream_scratch_) {
    if (!std::isfinite(v)) {
      v = 0.0f;
      ++zeroed_;
    }
  }
  return stream_scratch_;
}

std::span<const std::int64_t> Ingress::admit_weights(
    std::span<const std::int64_t> weights) {
  if (!options_.enabled || weights.empty()) return weights;
  ZKA_CHECK(options_.weight_cap_ratio > 0.0,
            "sanitize: weight_cap_ratio must be positive, got %f",
            options_.weight_cap_ratio);
  median_scratch_.assign(weights.begin(), weights.end());
  const std::size_t mid = median_scratch_.size() / 2;
  std::nth_element(median_scratch_.begin(), median_scratch_.begin() + mid,
                   median_scratch_.end());
  const std::int64_t median = median_scratch_[mid];
  if (median <= 0) return weights;  // no meaningful scale to clamp against
  const double cap_real =
      static_cast<double>(median) * options_.weight_cap_ratio;
  const std::int64_t cap =
      cap_real >= 9.2e18 ? std::numeric_limits<std::int64_t>::max()
                         : static_cast<std::int64_t>(cap_real);
  bool any_over = false;
  for (const std::int64_t w : weights) {
    if (w > cap) {
      any_over = true;
      break;
    }
  }
  if (!any_over) return weights;  // pass-through
  weight_scratch_.assign(weights.begin(), weights.end());
  for (std::int64_t& w : weight_scratch_) {
    if (w > cap) {
      w = cap;
      ++clamped_;
    }
  }
  return weight_scratch_;
}

}  // namespace zka::defense::sanitize
