// Krum / Multi-Krum (Blanchard et al., NeurIPS 2017).
//
// Each update is scored by the sum of squared L2 distances to its
// n - f - 2 nearest neighbors; low score means "centrally located".
// Multi-Krum iteratively selects the lowest-scoring update m times
// (rescoring after each removal) and averages the selection.
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class MultiKrum : public Aggregator {
 public:
  /// `num_byzantine` is the assumed attacker bound f; `num_selected` is m
  /// (0 selects the default m = n - f at aggregate time; m = 1 is plain
  /// Krum). By default all updates are scored once and the m lowest-score
  /// ones are kept; `iterative` re-scores after each removal (the variant
  /// Bulyan builds on). One-shot scoring is the robust choice when
  /// colluding attackers submit identical updates: under iterative
  /// selection with large m, a mutual-distance-zero pair wins the tail
  /// slots once most benign updates are already excluded.
  MultiKrum(std::size_t num_byzantine, std::size_t num_selected = 0,
            bool iterative = false)
      : f_(num_byzantine), m_(num_selected), iterative_(iterative) {}

  using Aggregator::aggregate;
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return m_ == 1 ? "Krum" : "mKrum"; }

  /// The selection indices for a given round, without averaging (used by
  /// Bulyan, which post-processes the selected set).
  std::vector<std::size_t> select(std::span<const UpdateView> updates) const;
  std::vector<std::size_t> select(const std::vector<Update>& updates) const;

 private:
  std::size_t f_;
  std::size_t m_;
  bool iterative_;
};

}  // namespace zka::defense
