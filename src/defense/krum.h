// Krum / Multi-Krum (Blanchard et al., NeurIPS 2017).
//
// Each update is scored by the sum of squared L2 distances to its
// n - f - 2 nearest neighbors; low score means "centrally located".
// Multi-Krum iteratively selects the lowest-scoring update m times
// (rescoring after each removal) and averages the selection.
//
// With SketchOptions::sketch_dim set, rounds big enough to care rank on
// JL sketches and re-check the selection boundary exactly at full
// dimension (defense/sketch.h); the one-shot variant then also streams —
// O(n·k) sketch state plus one O(d) running sum instead of n·d buffers —
// using the replay protocol in aggregator.h for the exact second pass.
// Buffered and streaming paths produce bitwise-identical results.
#pragma once

#include <optional>

#include "defense/aggregator.h"
#include "defense/sketch.h"

namespace zka::defense {

class MultiKrum : public Aggregator {
 public:
  /// `num_byzantine` is the assumed attacker bound f; `num_selected` is m
  /// (0 selects the default m = n - f at aggregate time; m = 1 is plain
  /// Krum). By default all updates are scored once and the m lowest-score
  /// ones are kept; `iterative` re-scores after each removal (the variant
  /// Bulyan builds on). One-shot scoring is the robust choice when
  /// colluding attackers submit identical updates: under iterative
  /// selection with large m, a mutual-distance-zero pair wins the tail
  /// slots once most benign updates are already excluded.
  MultiKrum(std::size_t num_byzantine, std::size_t num_selected = 0,
            bool iterative = false, SketchOptions sketch = {})
      : f_(num_byzantine),
        m_(num_selected),
        iterative_(iterative),
        sketch_(sketch) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return true; }
  std::string name() const override { return m_ == 1 ? "Krum" : "mKrum"; }

  /// The selection indices for a given round, without averaging (used by
  /// Bulyan, which post-processes the selected set).
  std::vector<std::size_t> select(std::span<const UpdateView> updates) const;
  std::vector<std::size_t> select(const std::vector<Update>& updates) const;

  // Streaming (one-shot sketched variant only): sketches fold per
  // stream_update, the ranking happens at stream_replay_request() time,
  // and the requested O(f + band) updates return once more for the exact
  // re-check + final mean. Rounds where sketching does not apply (small
  // n, low dim) silently buffer internally and run the exact rule, so
  // finish_stream() always equals aggregate().
  bool supports_streaming() const noexcept override {
    return sketch_.sketch_dim > 0 && !iterative_;
  }
  void do_begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override;
  void do_stream_update(UpdateView update) override;
  std::span<const std::size_t> stream_replay_request() override;
  void do_stream_replay(std::size_t index, UpdateView update) override;
  AggregationResult finish_stream() override;

 private:
  std::size_t selection_size(std::size_t n) const {
    const std::size_t m = m_ == 0 ? (n > f_ ? n - f_ : 1) : m_;
    return std::min(m, n);
  }
  AggregationResult aggregate_sketched(std::span<const UpdateView> updates);
  void reset_stream();

  std::size_t f_;
  std::size_t m_;
  bool iterative_;
  SketchOptions sketch_;

  // Streaming state (empty between rounds).
  bool streaming_ = false;
  bool stream_buffered_ = false;  ///< degenerate round: exact rule on a buffer
  std::size_t stream_dim_ = 0;
  std::size_t stream_n_ = 0;
  std::size_t stream_next_ = 0;
  std::vector<std::int64_t> stream_weights_;
  std::optional<tensor::JlSketch> stream_sketch_;
  std::vector<float> stream_rows_;      ///< n × k sketches
  std::vector<double> stream_sum_;      ///< index-ascending Σ of all updates
  std::vector<double> stream_scratch_;  ///< k doubles for project()
  std::vector<Update> stream_buffer_;   ///< degenerate mode only
  bool stream_planned_ = false;
  SketchedSelectionPlan stream_plan_;
  std::vector<float> stream_replayed_;  ///< replay.size() × dim
  std::size_t stream_replay_next_ = 0;
};

}  // namespace zka::defense
