#include "defense/bulyan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "defense/krum.h"
#include "util/stats.h"

namespace zka::defense {

AggregationResult Bulyan::aggregate(const std::vector<Update>& updates,
                                    const std::vector<std::int64_t>& weights) {
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  // theta = n - 2f selections, clamped so at least one update survives.
  const std::size_t theta = n > 2 * f_ ? n - 2 * f_ : 1;
  // Keep beta = theta - 2f values per coordinate, at least one.
  const std::size_t keep = theta > 2 * f_ ? theta - 2 * f_ : 1;

  MultiKrum krum(f_, theta, /*iterative=*/true);
  AggregationResult result;
  result.selected = krum.select(updates);

  const std::size_t dim = updates.front().size();
  result.model.resize(dim);
  std::vector<float> column(result.selected.size());
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < result.selected.size(); ++k) {
      column[k] = updates[result.selected[k]][i];
    }
    const float med = util::median(std::vector<float>(column));
    // Average the `keep` values closest to the median.
    std::sort(column.begin(), column.end(),
              [med](float a, float b) {
                return std::abs(a - med) < std::abs(b - med);
              });
    double acc = 0.0;
    const std::size_t kk = std::min(keep, column.size());
    for (std::size_t k = 0; k < kk; ++k) acc += column[k];
    result.model[i] = static_cast<float>(acc / static_cast<double>(kk));
  }
  return result;
}

}  // namespace zka::defense
