#include "defense/bulyan.h"

#include <algorithm>
#include <cmath>

#include "defense/coordwise.h"
#include "defense/krum.h"
#include "util/check.h"
#include "util/prof.h"

namespace zka::defense {

AggregationResult Bulyan::do_aggregate(std::span<const UpdateView> updates,
                                    std::span<const std::int64_t> weights) {
  ZKA_PROF_SCOPE("aggregate/bulyan");
  validate_updates(updates, weights);
  const std::size_t n = updates.size();
  // f/n feasibility: theta = n - 2f Multi-Krum selections must exist. (The
  // full Bulyan bound n >= 4f + 3 is not required here; the per-coordinate
  // keep window below degrades to 1 when theta <= 2f.)
  ZKA_CHECK(n > 2 * f_, "Bulyan: need n > 2f updates (n=%zu, f=%zu)", n, f_);
  const std::size_t theta = n - 2 * f_;
  // Keep beta = theta - 2f values per coordinate, at least one.
  const std::size_t keep = theta > 2 * f_ ? theta - 2 * f_ : 1;

  MultiKrum krum(f_, theta, /*iterative=*/true, sketch_);
  AggregationResult result;
  result.selected = krum.select(updates);

  std::vector<UpdateView> chosen;
  chosen.reserve(result.selected.size());
  for (const std::size_t k : result.selected) chosen.push_back(updates[k]);

  const std::size_t dim = updates.front().size();
  result.model.resize(dim);
  for_each_sorted_coordinate(chosen, [&](std::size_t i,
                                         std::span<const float> column) {
    // The sorted column replaces the old median copy plus sort-by-|x-med|:
    // in sorted order the values nearest the median form a window that a
    // two-pointer walk grows outward in increasing-distance order.
    const std::size_t s = column.size();
    const std::size_t mid = s / 2;
    const float med =
        s % 2 == 1 ? column[mid]
                   : static_cast<float>((static_cast<double>(column[mid - 1]) +
                                         static_cast<double>(column[mid])) /
                                        2.0);
    std::ptrdiff_t r = static_cast<std::ptrdiff_t>(
        std::lower_bound(column.begin(), column.end(), med) - column.begin());
    std::ptrdiff_t l = r - 1;
    const std::size_t kk = std::min(keep, s);
    double acc = 0.0;
    for (std::size_t picked = 0; picked < kk; ++picked) {
      const bool take_left =
          r >= static_cast<std::ptrdiff_t>(s) ||
          (l >= 0 && std::abs(column[static_cast<std::size_t>(l)] - med) <=
                         std::abs(column[static_cast<std::size_t>(r)] - med));
      if (take_left) {
        acc += static_cast<double>(column[static_cast<std::size_t>(l)]);
        --l;
      } else {
        acc += static_cast<double>(column[static_cast<std::size_t>(r)]);
        ++r;
      }
    }
    result.model[i] = static_cast<float>(acc / static_cast<double>(kk));
  });
  return result;
}

}  // namespace zka::defense
