// Pairwise geometry shared by Krum, Bulyan, FoolsGold and the analysis
// layer, computed through the tensor fast path.
//
// The O(n²·d) pairwise pass is the dominant cost of every distance-based
// defense, and as n separate dot products it is memory-bound: each update
// streams from RAM n times. Expanding ‖a−b‖² = ‖a‖² + ‖b‖² − 2·aᵀb turns
// the whole job into one Gram matrix G = A·Aᵀ through the packed, blocked
// GEMM, which reads each update O(n/NC) times from cache instead.
//
// The expansion is numerically dangerous exactly where the defenses are
// most sensitive: colluding attackers submit near-identical updates, whose
// true distance is the difference of two large, nearly equal numbers. A
// float32 Gram entry carries ~1e-7 relative error, so a pair at relative
// distance below ~1e-3 would surface mostly noise — and those tiny
// distances are precisely what drives Krum's neighbor sums. Therefore any
// entry whose expanded d² falls below kCorrectionThreshold × (‖a‖²+‖b‖²)
// is recomputed exactly (double-accumulated diff-square over the raw
// floats). Everything the scalar reference would rank by tiny margins goes
// through the exact path, so selections match the scalar implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "defense/aggregator.h"

namespace zka::defense {

/// Dense symmetric n×n matrix stored flat (row-major); replaces the old
/// vector<vector<double>> so rows are contiguous and cache-friendly.
class PairwiseMatrix {
 public:
  PairwiseMatrix() = default;
  explicit PairwiseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * n_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * n_ + j];
  }
  /// Contiguous row i (n entries).
  const double* row(std::size_t i) const { return data_.data() + i * n_; }
  std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Relative threshold below which an expanded squared distance is
/// recomputed exactly in double (see file comment).
inline constexpr double kCorrectionThreshold = 0.05;

/// Symmetric matrix of squared L2 distances. Uses the Gram fast path for
/// problems big enough to care (n ≥ 8 and dim ≥ 64), exact per-pair
/// reductions otherwise. Deterministic for any thread count.
PairwiseMatrix pairwise_sq_distances(std::span<const UpdateView> updates);

/// Symmetric matrix of cosine similarities (diagonal = 1; 0 for zero-norm
/// rows), same fast/exact path split as pairwise_sq_distances.
PairwiseMatrix pairwise_cosine(std::span<const UpdateView> updates);

/// Krum score of update `i`: sum of its `num_neighbors` smallest squared
/// distances to other non-excluded updates.
double krum_score(const PairwiseMatrix& sq_dist, std::size_t i,
                  std::size_t num_neighbors,
                  const std::vector<bool>& excluded);

}  // namespace zka::defense
