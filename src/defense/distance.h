// Pairwise-distance helpers shared by Krum, Bulyan and FoolsGold.
#pragma once

#include <cstddef>
#include <vector>

#include "defense/aggregator.h"

namespace zka::defense {

/// Symmetric matrix (as nested vectors) of squared L2 distances.
std::vector<std::vector<double>> pairwise_sq_distances(
    const std::vector<Update>& updates);

/// Krum score of update `i`: sum of its `num_neighbors` smallest squared
/// distances to other updates.
double krum_score(const std::vector<std::vector<double>>& sq_dist,
                  std::size_t i, std::size_t num_neighbors,
                  const std::vector<bool>& excluded);

}  // namespace zka::defense
