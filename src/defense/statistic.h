// Coordinate-wise statistic defenses (Yin et al. 2018): Median and
// Trimmed mean. They blend all updates, so DPR is undefined for them
// (the paper reports "NA").
//
// Both rules need all n values of a coordinate to compute its order
// statistic, so they cannot stream exactly. Constructed with a memory
// budget they stream through a documented approximation instead: a W-ary
// hierarchical tree (median-of-medians / trimmed-mean-of-trimmed-means)
// whose wave size W is derived from the budget, keeping peak server
// memory at O(W·d·log_W n) instead of n·d. The tree is bitwise
// deterministic for a fixed arrival order and budget, and collapses to
// the exact batch rule whenever one wave holds the whole round — but it
// is not the batch statistic in general, so streaming_exact() is false
// (see the contract note in aggregator.h).
#pragma once

#include <functional>

#include "defense/aggregator.h"

namespace zka::defense {

/// Hierarchical W-ary fold shared by the coordinate-wise streaming paths:
/// arrivals fill level 0; any level reaching W items is reduced to one
/// item of the next level; finish() folds the partial levels bottom-up
/// (the carry from below joins a level *after* its complete items, i.e.
/// in arrival order). Peak memory is (W − 1)·d floats per level, with
/// ⌈log_W n⌉ levels.
class CoordTreeStream {
 public:
  using Reduce = std::function<Update(std::span<const UpdateView>)>;

  void begin(std::size_t dim, std::size_t n, std::size_t wave);
  void add(Update update, const Reduce& reduce);
  Update finish(const Reduce& reduce);

  bool active() const noexcept { return active_; }
  std::size_t expected() const noexcept { return n_; }
  std::size_t received() const noexcept { return received_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t wave() const noexcept { return wave_; }

 private:
  bool active_ = false;
  std::size_t dim_ = 0;
  std::size_t n_ = 0;
  std::size_t wave_ = 0;
  std::size_t received_ = 0;
  std::vector<std::vector<Update>> levels_;
};

/// Wave size for a coordinate-wise tree under `memory_budget_bytes`:
/// budget / update_bytes arrivals per wave, floored at 2 (a 1-ary tree
/// never reduces) and capped at n (one wave = exact batch rule).
std::size_t coord_tree_wave(std::size_t memory_budget_bytes, std::size_t dim,
                            std::size_t n);

class Median : public Aggregator {
 public:
  /// `memory_budget_bytes` > 0 opts into approximate tree streaming (see
  /// file comment); 0 keeps the batch-only rule.
  explicit Median(std::size_t memory_budget_bytes = 0)
      : budget_(memory_budget_bytes) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "Median"; }

  bool supports_streaming() const noexcept override { return budget_ > 0; }
  bool streaming_exact() const noexcept override { return false; }
  void do_begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override;
  void do_stream_update(UpdateView update) override;
  AggregationResult finish_stream() override;

 private:
  std::size_t budget_;
  CoordTreeStream tree_;
};

class TrimmedMean : public Aggregator {
 public:
  /// Removes the `trim` largest and `trim` smallest values per coordinate
  /// before averaging. Requires updates.size() > 2 * trim at aggregate time.
  /// `memory_budget_bytes` > 0 opts into approximate tree streaming; each
  /// tree node trims min(trim, (count − 1) / 2) — the full bound at every
  /// node, a conservative (over-trimming, still robust) choice that equals
  /// the batch rule when one wave holds the round.
  explicit TrimmedMean(std::size_t trim, std::size_t memory_budget_bytes = 0)
      : trim_(trim), budget_(memory_budget_bytes) {}

  AggregationResult do_aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "TRmean"; }

  std::size_t trim() const noexcept { return trim_; }

  bool supports_streaming() const noexcept override { return budget_ > 0; }
  bool streaming_exact() const noexcept override { return false; }
  void do_begin_stream(std::size_t dim,
                    std::span<const std::int64_t> weights) override;
  void do_stream_update(UpdateView update) override;
  AggregationResult finish_stream() override;

 private:
  std::size_t trim_;
  std::size_t budget_;
  CoordTreeStream tree_;
};

}  // namespace zka::defense
