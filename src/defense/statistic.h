// Coordinate-wise statistic defenses (Yin et al. 2018): Median and
// Trimmed mean. They blend all updates, so DPR is undefined for them
// (the paper reports "NA").
#pragma once

#include "defense/aggregator.h"

namespace zka::defense {

class Median : public Aggregator {
 public:
  using Aggregator::aggregate;
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "Median"; }
};

class TrimmedMean : public Aggregator {
 public:
  /// Removes the `trim` largest and `trim` smallest values per coordinate
  /// before averaging. Requires updates.size() > 2 * trim at aggregate time.
  explicit TrimmedMean(std::size_t trim) : trim_(trim) {}

  using Aggregator::aggregate;
  AggregationResult aggregate(std::span<const UpdateView> updates,
                              std::span<const std::int64_t> weights) override;
  bool selects_clients() const noexcept override { return false; }
  std::string name() const override { return "TRmean"; }

  std::size_t trim() const noexcept { return trim_; }

 private:
  std::size_t trim_;
};

}  // namespace zka::defense
