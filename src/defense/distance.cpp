#include "defense/distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/ops.h"
#include "tensor/reduce.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace zka::defense {
namespace {

// Below either bound the Gram detour (pack + GEMM + correction scan) costs
// more than exact per-pair reductions.
constexpr std::size_t kGramMinRows = 8;
constexpr std::size_t kGramMinDim = 64;

// Row-parallel assembly: task i owns the strictly-upper entries of row i
// plus their mirrors in column i, so writes are disjoint and every entry
// is a pure function of (i, j) — deterministic for any thread count.
void for_each_row(std::size_t n, std::size_t dim,
                  const std::function<void(std::size_t)>& body) {
  if (tensor::kernel_parallelism_enabled() && n > 1 &&
      n * dim >= (std::size_t{1} << 18) &&
      util::global_thread_pool().size() > 1) {
    util::global_thread_pool().parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

// Update-dimension agreement: every pairwise reduction below assumes a
// rectangular [n, dim] block.
void dcheck_rectangular(std::span<const UpdateView> updates, std::size_t dim) {
  if constexpr (!util::kContractsEnabled) return;
  for (std::size_t k = 0; k < updates.size(); ++k) {
    ZKA_DCHECK(updates[k].size() == dim,
               "pairwise: update %zu has %zu coordinates, expected %zu", k,
               updates[k].size(), dim);
  }
}

}  // namespace

PairwiseMatrix pairwise_sq_distances(std::span<const UpdateView> updates) {
  const std::size_t n = updates.size();
  PairwiseMatrix d(n);
  if (n < 2) return d;
  const std::size_t dim = updates.front().size();
  dcheck_rectangular(updates, dim);

  if (n >= kGramMinRows && dim >= kGramMinDim) {
    std::vector<float> gram(n * n);
    std::vector<double> sqn(n);
    tensor::gram_matrix(updates, gram, sqn);
    for_each_row(n, dim, [&](std::size_t i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double scale = sqn[i] + sqn[j];
        double d2 = scale - 2.0 * static_cast<double>(gram[i * n + j]);
        // Cancellation guard: a small expanded distance (colluders, and
        // any negative round-off) is mostly float noise — recompute it
        // exactly so Krum's tiny-margin rankings stay trustworthy.
        if (d2 < kCorrectionThreshold * scale) {
          d2 = tensor::squared_distance(updates[i], updates[j]);
        }
        d(i, j) = d2;
        d(j, i) = d2;
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d2 = tensor::squared_distance(updates[i], updates[j]);
        d(i, j) = d2;
        d(j, i) = d2;
      }
    }
  }
  return d;
}

PairwiseMatrix pairwise_cosine(std::span<const UpdateView> updates) {
  const std::size_t n = updates.size();
  PairwiseMatrix cs(n);
  if (n == 0) return cs;
  const std::size_t dim = updates.front().size();
  dcheck_rectangular(updates, dim);

  if (n >= kGramMinRows && dim >= kGramMinDim) {
    std::vector<float> gram(n * n);
    std::vector<double> sqn(n);
    tensor::gram_matrix(updates, gram, sqn);
    std::vector<double> inv_norm(n);
    for (std::size_t i = 0; i < n; ++i) {
      inv_norm[i] = sqn[i] > 0.0 ? 1.0 / std::sqrt(sqn[i]) : 0.0;
    }
    for_each_row(n, dim, [&](std::size_t i) {
      cs(i, i) = sqn[i] > 0.0 ? 1.0 : 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double c =
            static_cast<double>(gram[i * n + j]) * inv_norm[i] * inv_norm[j];
        cs(i, j) = c;
        cs(j, i) = c;
      }
    });
  } else {
    std::vector<double> sqn(n);
    for (std::size_t i = 0; i < n; ++i) {
      sqn[i] = tensor::squared_norm(updates[i]);
      cs(i, i) = sqn[i] > 0.0 ? 1.0 : 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double c = 0.0;
        if (sqn[i] > 0.0 && sqn[j] > 0.0) {
          c = tensor::dot(updates[i], updates[j]) /
              (std::sqrt(sqn[i]) * std::sqrt(sqn[j]));
        }
        cs(i, j) = c;
        cs(j, i) = c;
      }
    }
  }
  return cs;
}

double krum_score(const PairwiseMatrix& sq_dist, std::size_t i,
                  std::size_t num_neighbors,
                  const std::vector<bool>& excluded) {
  const std::size_t n = sq_dist.size();
  ZKA_DCHECK(i < n, "krum_score: index %zu out of %zu updates", i, n);
  ZKA_DCHECK(excluded.size() == n,
             "krum_score: exclusion mask of %zu for %zu updates",
             excluded.size(), n);
  std::vector<double> dists;
  dists.reserve(n);
  const double* row = sq_dist.row(i);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i || excluded[j]) continue;
    dists.push_back(row[j]);
  }
  const std::size_t k = std::min(num_neighbors, dists.size());
  std::partial_sort(dists.begin(),
                    dists.begin() + static_cast<std::ptrdiff_t>(k),
                    dists.end());
  double score = 0.0;
  for (std::size_t j = 0; j < k; ++j) score += dists[j];
  return score;
}

}  // namespace zka::defense
