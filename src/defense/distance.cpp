#include "defense/distance.h"

#include <algorithm>

namespace zka::defense {

std::vector<std::vector<double>> pairwise_sq_distances(
    const std::vector<Update>& updates) {
  const std::size_t n = updates.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const Update& a = updates[i];
      const Update& b = updates[j];
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double diff = static_cast<double>(a[k]) - b[k];
        acc += diff * diff;
      }
      d[i][j] = acc;
      d[j][i] = acc;
    }
  }
  return d;
}

double krum_score(const std::vector<std::vector<double>>& sq_dist,
                  std::size_t i, std::size_t num_neighbors,
                  const std::vector<bool>& excluded) {
  std::vector<double> dists;
  dists.reserve(sq_dist.size());
  for (std::size_t j = 0; j < sq_dist.size(); ++j) {
    if (j == i || excluded[j]) continue;
    dists.push_back(sq_dist[i][j]);
  }
  const std::size_t k = std::min(num_neighbors, dists.size());
  std::partial_sort(dists.begin(),
                    dists.begin() + static_cast<std::ptrdiff_t>(k),
                    dists.end());
  double score = 0.0;
  for (std::size_t j = 0; j < k; ++j) score += dists[j];
  return score;
}

}  // namespace zka::defense
