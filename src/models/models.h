// Model zoo: the paper's two classifiers, ZKA-R's filter layer and
// ZKA-G's TCNN generator, plus a factory abstraction used by the FL
// simulator and the attacks to materialize a classifier from a flat
// parameter vector.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "nn/sequential.h"

namespace zka::util {
class Rng;
}

namespace zka::models {

/// Task geometry shared by data synthesis, models, and attacks.
struct ImageSpec {
  std::int64_t channels = 1;
  std::int64_t height = 28;
  std::int64_t width = 28;
  std::int64_t num_classes = 10;

  std::int64_t pixels() const noexcept { return channels * height * width; }
};

/// 28x28 grayscale, 10 classes (the Fashion-MNIST stand-in).
ImageSpec fashion_spec() noexcept;
/// 32x32 RGB, 10 classes (the CIFAR-10 stand-in).
ImageSpec cifar_spec() noexcept;

/// The paper's Fashion-MNIST network: 2 conv layers + 1 dense layer.
/// conv(1->8) - relu - pool - conv(8->16) - relu - pool - fc(10).
std::unique_ptr<nn::Sequential> make_fashion_cnn(util::Rng& rng);

/// The paper's CIFAR-10 network: 6 conv layers + 2 dense layers
/// (three conv-conv-pool blocks, then fc-relu-fc).
std::unique_ptr<nn::Sequential> make_cifar_cnn(util::Rng& rng);

/// ZKA-R's trainable filter: a single same-padded JxJ convolution mapping a
/// random image A to the synthetic image B (Fig. 2 of the paper).
std::unique_ptr<nn::Sequential> make_filter_layer(const ImageSpec& spec,
                                                  std::int64_t kernel,
                                                  util::Rng& rng);

/// ZKA-G's generator: latent vector -> dense -> two stride-2 transposed
/// convolutions -> one convolution -> tanh (Fig. 3; WGAN-style TCNN).
/// Requires spec height/width divisible by 4.
std::unique_ptr<nn::Sequential> make_tcnn_generator(const ImageSpec& spec,
                                                    std::int64_t latent_dim,
                                                    util::Rng& rng);

/// Builds a classifier for the task, seeded deterministically.
using ModelFactory =
    std::function<std::unique_ptr<nn::Sequential>(std::uint64_t seed)>;

/// The two benchmark tasks.
enum class Task { kFashion, kCifar };

const char* task_name(Task task) noexcept;
ImageSpec task_spec(Task task) noexcept;
ModelFactory task_model_factory(Task task);

}  // namespace zka::models
