#include "models/models.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/rng.h"

namespace zka::models {

ImageSpec fashion_spec() noexcept { return ImageSpec{1, 28, 28, 10}; }
ImageSpec cifar_spec() noexcept { return ImageSpec{3, 32, 32, 10}; }

std::unique_ptr<nn::Sequential> make_fashion_cnn(util::Rng& rng) {
  const ImageSpec spec = fashion_spec();
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(spec.channels, 8, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Conv2d>(8, 16, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(16 * (spec.height / 4) * (spec.width / 4),
                           spec.num_classes, rng);
  return net;
}

std::unique_ptr<nn::Sequential> make_cifar_cnn(util::Rng& rng) {
  const ImageSpec spec = cifar_spec();
  auto net = std::make_unique<nn::Sequential>();
  // Block 1.
  net->emplace<nn::Conv2d>(spec.channels, 8, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(8, 8, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  // Block 2.
  net->emplace<nn::Conv2d>(8, 16, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(16, 16, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  // Block 3.
  net->emplace<nn::Conv2d>(16, 32, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(32, 32, 3, 1, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::MaxPool2d>(2);
  // Dense head (2 layers).
  net->emplace<nn::Flatten>();
  net->emplace<nn::Linear>(32 * (spec.height / 8) * (spec.width / 8), 64, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Linear>(64, spec.num_classes, rng);
  return net;
}

std::unique_ptr<nn::Sequential> make_filter_layer(const ImageSpec& spec,
                                                  std::int64_t kernel,
                                                  util::Rng& rng) {
  if (kernel % 2 == 0) {
    throw std::invalid_argument("filter layer kernel must be odd");
  }
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(spec.channels, spec.channels, kernel, 1,
                           (kernel - 1) / 2, rng);
  return net;
}

std::unique_ptr<nn::Sequential> make_tcnn_generator(const ImageSpec& spec,
                                                    std::int64_t latent_dim,
                                                    util::Rng& rng) {
  if (spec.height % 4 != 0 || spec.width % 4 != 0) {
    throw std::invalid_argument(
        "generator needs height/width divisible by 4");
  }
  const std::int64_t h0 = spec.height / 4;
  const std::int64_t w0 = spec.width / 4;
  const std::int64_t base = 32;
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(latent_dim, base * h0 * w0, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Unflatten>(base, h0, w0);
  net->emplace<nn::ConvTranspose2d>(base, base / 2, 4, 2, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::ConvTranspose2d>(base / 2, base / 4, 4, 2, 1, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(base / 4, spec.channels, 3, 1, 1, rng);
  net->emplace<nn::Tanh>();
  return net;
}

const char* task_name(Task task) noexcept {
  return task == Task::kFashion ? "Fashion" : "Cifar";
}

ImageSpec task_spec(Task task) noexcept {
  return task == Task::kFashion ? fashion_spec() : cifar_spec();
}

ModelFactory task_model_factory(Task task) {
  return [task](std::uint64_t seed) {
    util::Rng rng(seed);
    return task == Task::kFashion ? make_fashion_cnn(rng)
                                  : make_cifar_cnn(rng);
  };
}

}  // namespace zka::models
