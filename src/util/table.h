// Aligned console tables + CSV emission for the bench binaries, so each
// bench can print the same row/column layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace zka::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: converts each cell with formatting helpers below.
  static std::string fmt(double value, int precision = 2);

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Prints to stdout, optionally preceded by a title line.
  void print(const std::string& title = "") const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zka::util
