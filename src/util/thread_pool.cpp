#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace zka::util {
namespace {

// Identifies, per thread, the pool (if any) whose worker_loop is running on
// it. parallel_for uses this to detect re-entrant calls: a body that itself
// calls parallel_for on the same pool must not block on helper jobs, since
// those queue behind the already-running outer tasks (deadlock with one
// worker, oversubscription otherwise).
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> result = task.get_future();
  {
    std::lock_guard lock(mutex_);
    jobs_.push(std::move(task));
  }
  cv_.notify_one();
  return result;
}

bool ThreadPool::in_worker_thread() const noexcept {
  return t_worker_of == this;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || in_worker_thread()) {
    // Re-entrant call from one of our own workers (or trivial size): run
    // inline on the calling thread. Blocking on helper futures here would
    // deadlock a fully-busy pool, and extra helpers would oversubscribe the
    // machine; the outer parallel_for already owns the available workers.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(drain));
  drain();  // The calling thread participates.
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::packaged_task<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool([] {
    // ZKA_THREADS overrides the worker count (0 / unset / invalid keeps
    // the hardware default). Useful for benchmarking scaling curves and
    // for CI machines whose cgroup quota differs from the visible cores.
    if (const char* env = std::getenv("ZKA_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace zka::util
