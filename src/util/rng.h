// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (data synthesis, Dirichlet
// partitioning, client sampling, weight init, attack noise) draws from an
// explicitly seeded `Rng` so that experiments are reproducible bit-for-bit
// given a seed. The engine is xoshiro256**, seeded through SplitMix64 as
// recommended by its authors.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace zka::util {

/// SplitMix64 step; used for seeding and for deriving child seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Derives an independent child generator; deterministic in (state, salt).
  /// Used to hand each FL client / attack / round its own stream.
  Rng split(std::uint64_t salt) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept;
  /// Dirichlet(alpha, ..., alpha) sample of dimension `dim`.
  std::vector<double> dirichlet(double alpha, std::size_t dim) noexcept;
  /// Dirichlet with per-component concentration parameters.
  std::vector<double> dirichlet(const std::vector<double>& alphas) noexcept;

  /// Populations up to this size sample through the partial Fisher-Yates
  /// path below; larger ones switch to Floyd's algorithm. The split keeps
  /// the draw sequences of every existing small-n bench bit-identical
  /// while making production-scale populations O(k).
  static constexpr std::size_t kDenseSampleMax = 4096;

  /// k distinct indices drawn uniformly from [0, n). For n <=
  /// kDenseSampleMax this is a partial Fisher-Yates shuffle (O(n) memory,
  /// seed-compatible with historical runs); above it, Floyd's hash-set
  /// algorithm draws the same uniform subsets in O(k) time and memory —
  /// at n = 10^6 the old path allocated and touched an 8 MB pool per
  /// round. Both paths are deterministic in (state, n, k); they consume
  /// different numbers of engine draws, so the two regimes are not
  /// cross-compatible streams.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace zka::util
