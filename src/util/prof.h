// Near-zero-overhead observability layer: RAII scoped timers and monotonic
// counters recorded into thread-local ring buffers, merged at flush into a
// Chrome trace-event JSON (chrome://tracing / Perfetto loadable) and an
// aggregate per-label summary.
//
// Cost model (the whole point of the design):
//
//   - ZKA_PROF compiled out (cmake -DZKA_PROF=OFF): the macros expand to
//     nothing; instrumented code is bit-identical to uninstrumented code.
//     The query API below still exists and returns empty data, so callers
//     (bench emitters, tests) compile unchanged.
//   - Compiled in, runtime-disabled (the default): every instrumentation
//     point pays exactly one relaxed atomic load and one predictable
//     branch. No clock read, no store.
//   - Enabled: a scope costs two monotonic clock reads plus one ring-slot
//     store; a counter costs one relaxed fetch_add on a thread-local cell.
//     No locks, no allocation on the hot path (allocation happens once per
//     thread / per counter call site, under the registry mutex).
//
// Threading: each thread owns a fixed-capacity event ring and its counter
// cells. Writers publish with a release store of the ring head; the flush
// side reads heads with acquire and merges deterministically (events sorted
// by start time, labels sorted lexicographically), so the merged output does
// not depend on thread registration order. Flush (summary / trace export /
// reset) must run at a quiescent point — after parallel regions have joined,
// which is how the round loop and the benches use it.
//
// Usage:
//
//   {
//     ZKA_PROF_SCOPE("aggregate");          // times the enclosing scope
//     ...
//   }
//   ZKA_PROF_COUNT("gemm/flops", 2 * m * n * k);
//
//   util::prof::set_enabled(true);          // or env ZKA_PROF=1
//   ... workload ...
//   util::prof::write_chrome_trace("results/trace.json");
//   for (const auto& s : util::prof::summary()) ...
//
// ZKA_PROF_COUNT caches the counter cell per (call site, thread) on first
// use, so the name expression must be stable at a given call site for the
// process lifetime (string literals and the fixed ISA-tier names qualify).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zka::util::prof {

#ifdef ZKA_PROF
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;

struct CounterCell {
  const char* name;
  std::atomic<std::uint64_t> value{0};
};

/// Registers a counter cell for the calling thread (registry mutex held
/// during registration only). Called once per call site per thread via the
/// static thread_local in ZKA_PROF_COUNT.
CounterCell* register_counter(const char* name);

/// Appends one completed scope to the calling thread's ring buffer.
void record_scope(const char* label, std::uint64_t start_ns,
                  std::uint64_t end_ns);
}  // namespace detail

/// The hot-path gate: one relaxed load, constant-folds to false when the
/// layer is compiled out.
inline bool enabled() noexcept {
  return kCompiled && detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds. Always available (even with ZKA_PROF off) — this
/// is the one sanctioned clock for timing anywhere in the repo.
std::uint64_t now_ns() noexcept;

/// Per-thread event-ring capacity (events retained per thread between
/// flushes). Overridable at process start via env ZKA_PROF_RING.
std::size_t ring_capacity() noexcept;

struct LabelSummary {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// One retained scope event, as merged at flush (sorted by start time, then
/// thread id, then label — a deterministic order for any thread schedule).
struct TraceEvent {
  std::string label;
  std::uint64_t start_ns = 0;  // relative to the profiling epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // registration-order thread index
};

/// Per-label aggregate over the retained events of all threads, sorted by
/// label. Percentiles are computed over event durations.
std::vector<LabelSummary> summary();

/// Monotonic counters merged across threads (same-name cells summed),
/// sorted by name.
std::vector<CounterSample> counters();

/// Retained events of all threads, merged and deterministically sorted.
std::vector<TraceEvent> events();

/// Events that fell out of a ring since the last reset (ring wrapped).
std::uint64_t dropped_events();

/// Clears every thread's ring and zeroes all counters. Like the other
/// flush-side calls, only valid at a quiescent point.
void reset();

/// The merged trace as a Chrome trace-event JSON object: "traceEvents"
/// holds complete ("ph":"X") events in microseconds; "zkaCounters" and
/// "zkaSummary" carry the counter and per-label aggregates (ignored by the
/// viewers, consumed by the bench emitter and tools/bench_diff.py).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; throws (ZKA_CHECK-style) when the
/// file cannot be opened or written.
void write_chrome_trace(const std::string& path);

/// RAII scope timer; prefer the ZKA_PROF_SCOPE macro. `label` must outlive
/// the process (string literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label) noexcept {
    if (enabled()) {
      label_ = label;
      start_ = now_ns();
    }
  }
  ~ScopedTimer() {
    if (label_ != nullptr) detail::record_scope(label_, start_, now_ns());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* label_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace zka::util::prof

#define ZKA_PROF_CONCAT_IMPL_(a, b) a##b
#define ZKA_PROF_CONCAT_(a, b) ZKA_PROF_CONCAT_IMPL_(a, b)

#ifdef ZKA_PROF

#define ZKA_PROF_SCOPE(label)                              \
  const ::zka::util::prof::ScopedTimer ZKA_PROF_CONCAT_(   \
      zka_prof_scope_, __LINE__)(label)

#define ZKA_PROF_COUNT(name, amount)                                       \
  do {                                                                     \
    if (::zka::util::prof::enabled()) {                                    \
      static thread_local ::zka::util::prof::detail::CounterCell* const    \
          zka_prof_cell_ =                                                 \
              ::zka::util::prof::detail::register_counter(name);           \
      zka_prof_cell_->value.fetch_add(static_cast<std::uint64_t>(amount),  \
                                      std::memory_order_relaxed);          \
    }                                                                      \
  } while (0)

#else  // !ZKA_PROF — expand to nothing, but keep the arguments compiled
       // (dead-code eliminated) so they cannot bit-rot unchecked, mirroring
       // the ZKA_DCHECK policy in util/check.h.

#define ZKA_PROF_SCOPE(label)          \
  do {                                 \
    if (false) { (void)(label); }      \
  } while (0)

#define ZKA_PROF_COUNT(name, amount)              \
  do {                                            \
    if (false) {                                  \
      (void)(name);                               \
      (void)(amount);                             \
    }                                             \
  } while (0)

#endif  // ZKA_PROF
