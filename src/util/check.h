// Contract-checking macros used across every layer of the library.
//
// Three macros, one policy:
//
//   ZKA_CHECK(cond, ...)        Always compiled in. On failure throws
//                               zka::util::ContractViolation (derives from
//                               std::invalid_argument, so existing tests and
//                               callers that catch std::invalid_argument /
//                               std::logic_error keep working). Use for API
//                               preconditions on cold paths: aggregate()
//                               entry, layer construction, config parsing.
//
//   ZKA_DCHECK(cond, ...)       Compiled to nothing unless the build defines
//                               ZKA_CONTRACTS (the asan/tsan presets turn it
//                               on). On failure prints the formatted message
//                               to stderr and aborts — abort, not throw, so
//                               the macro is usable inside noexcept kernels
//                               and death-testable with EXPECT_DEATH. Use for
//                               per-element / per-iteration invariants the
//                               release hot paths must not pay for:
//                               operator[], GEMM size agreement, reduce span
//                               lengths.
//
//   ZKA_CHECK_SHAPE(a, b, ...)  ZKA_CHECK specialization for shape/extent
//                               agreement of two index sequences (tensor
//                               Shape vectors, or any container of integers
//                               comparable with ==). The failure message
//                               formats both shapes "[2, 3] vs [4]".
//
// All three take an optional printf-style context message after the
// condition: ZKA_CHECK(n > f, "Krum: n=%zu f=%zu", n, f).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace zka::util {

/// Thrown by ZKA_CHECK / ZKA_CHECK_SHAPE. Derives from std::invalid_argument
/// because a violated precondition is almost always a bad argument, and the
/// pre-contract code (and its tests) threw exactly that.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

#ifdef ZKA_CONTRACTS
inline constexpr bool kContractsEnabled = true;
#else
inline constexpr bool kContractsEnabled = false;
#endif

namespace detail {

/// "kind failed: cond (file:line)" — no user context.
std::string contract_message(const char* kind, const char* cond,
                             const char* file, int line);

/// Same, with a printf-formatted user context appended.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 5, 6)))
#endif
std::string contract_message(const char* kind, const char* cond,
                             const char* file, int line, const char* fmt, ...);

[[noreturn]] void contract_throw(const std::string& message);
[[noreturn]] void contract_abort(const std::string& message) noexcept;

/// "[2, 3, 4]" for any container of integers (tensor::Shape and friends).
template <typename Seq>
std::string format_extents(const Seq& extents) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const auto d : extents) {
    if (!first) os << ", ";
    os << static_cast<std::int64_t>(d);
    first = false;
  }
  os << ']';
  return os.str();
}

}  // namespace detail
}  // namespace zka::util

#define ZKA_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::zka::util::detail::contract_throw(                                 \
          ::zka::util::detail::contract_message(                           \
              "ZKA_CHECK", #cond, __FILE__,                                \
              __LINE__ __VA_OPT__(, ) __VA_ARGS__));                       \
    }                                                                      \
  } while (0)

// The condition and message arguments stay compiled (dead-code eliminated
// when contracts are off), so variables used only in contracts never trip
// -Wunused under -Werror and the expression can't bit-rot unchecked.
#define ZKA_DCHECK(cond, ...)                                              \
  do {                                                                     \
    if (::zka::util::kContractsEnabled && !(cond)) {                       \
      ::zka::util::detail::contract_abort(                                 \
          ::zka::util::detail::contract_message(                           \
              "ZKA_DCHECK", #cond, __FILE__,                               \
              __LINE__ __VA_OPT__(, ) __VA_ARGS__));                       \
    }                                                                      \
  } while (0)

#define ZKA_CHECK_SHAPE(a, b, ...)                                         \
  do {                                                                     \
    const auto& zka_check_shape_a_ = (a);                                  \
    const auto& zka_check_shape_b_ = (b);                                  \
    if (!(zka_check_shape_a_ == zka_check_shape_b_)) {                     \
      ::zka::util::detail::contract_throw(                                 \
          ::zka::util::detail::contract_message(                           \
              "ZKA_CHECK_SHAPE", #a " == " #b, __FILE__,                   \
              __LINE__ __VA_OPT__(, ) __VA_ARGS__) +                       \
          ": " + ::zka::util::detail::format_extents(zka_check_shape_a_) + \
          " vs " + ::zka::util::detail::format_extents(zka_check_shape_b_)); \
    }                                                                      \
  } while (0)
