#include "util/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "util/check.h"

namespace zka::util::prof {
namespace {

// One retained scope; plain struct, synchronized via the ring head (see
// record_scope / snapshot_threads).
struct Event {
  const char* label;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

struct ThreadState {
  ThreadState(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), ring(capacity) {}
  const std::uint32_t tid;
  std::vector<Event> ring;
  // Total events ever written since the last reset; the ring slot of event
  // i is i % ring.size(). Release store publishes the slot contents.
  std::atomic<std::uint64_t> head{0};
  // Cells are appended under the registry mutex and never removed; flush
  // reads the atomic values concurrently with hot-path relaxed adds.
  std::vector<std::unique_ptr<detail::CounterCell>> cells;
};

struct Registry {
  Registry() : epoch_ns(now_ns()) {}
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadState>> threads;  // registration order
  std::uint32_t next_tid = 0;
  const std::uint64_t epoch_ns;  // trace timestamps are relative to this
};

Registry& registry() {
  static Registry reg;
  return reg;
}

std::size_t env_ring_capacity() {
  if (const char* env = std::getenv("ZKA_PROF_RING")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::size_t{1} << 14;  // 16384 events/thread, ~384 KiB
}

// The calling thread's state, registered globally on first use. Held by
// shared_ptr from both sides so a flush after thread exit still reads the
// thread's retained events.
ThreadState& local_state() {
  static thread_local std::shared_ptr<ThreadState> state = [] {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    auto s = std::make_shared<ThreadState>(reg.next_tid++, ring_capacity());
    reg.threads.push_back(s);
    return s;
  }();
  return *state;
}

bool env_enabled() {
  const char* env = std::getenv("ZKA_PROF");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

// Stable snapshot of every registered thread (flush side). The returned
// shared_ptrs keep states alive even if their threads have exited.
std::vector<std::shared_ptr<ThreadState>> snapshot_threads() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return reg.threads;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{env_enabled()};

CounterCell* register_counter(const char* name) {
  ThreadState& st = local_state();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  st.cells.push_back(std::make_unique<CounterCell>());
  st.cells.back()->name = name;
  return st.cells.back().get();
}

void record_scope(const char* label, std::uint64_t start_ns,
                  std::uint64_t end_ns) {
  ThreadState& st = local_state();
  const std::uint64_t h = st.head.load(std::memory_order_relaxed);
  Event& slot = st.ring[h % st.ring.size()];
  slot.label = label;
  slot.start_ns = start_ns;
  slot.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  st.head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(kCompiled && on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t ring_capacity() noexcept {
  static const std::size_t cap = env_ring_capacity();
  return cap;
}

std::vector<TraceEvent> events() {
  const std::uint64_t epoch = registry().epoch_ns;
  std::vector<TraceEvent> out;
  for (const auto& st : snapshot_threads()) {
    const std::uint64_t head = st->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(head, st->ring.size());
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Event& e = st->ring[i % st->ring.size()];
      TraceEvent ev;
      ev.label = e.label;
      ev.start_ns = e.start_ns >= epoch ? e.start_ns - epoch : 0;
      ev.dur_ns = e.dur_ns;
      ev.tid = st->tid;
      out.push_back(std::move(ev));
    }
  }
  // Deterministic merge order for any thread registration order.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.label < b.label;
            });
  return out;
}

std::vector<LabelSummary> summary() {
  std::map<std::string, std::vector<std::uint64_t>> durations;
  for (const TraceEvent& e : events()) {
    durations[e.label].push_back(e.dur_ns);
  }
  std::vector<LabelSummary> out;
  out.reserve(durations.size());
  for (auto& [label, ds] : durations) {
    std::sort(ds.begin(), ds.end());
    LabelSummary s;
    s.label = label;
    s.count = ds.size();
    for (const std::uint64_t d : ds) s.total_ns += d;
    s.min_ns = ds.front();
    s.max_ns = ds.back();
    s.p50_ns = ds[(ds.size() - 1) / 2];
    s.p99_ns = ds[(ds.size() - 1) * 99 / 100];
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<CounterSample> counters() {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& st : snapshot_threads()) {
    // Cell list growth is guarded by the registry mutex (held by
    // snapshot_threads' caller domain); re-lock to read the stable prefix.
    const std::lock_guard<std::mutex> lock(registry().mu);
    for (const auto& cell : st->cells) {
      merged[cell->name] += cell->value.load(std::memory_order_relaxed);
    }
  }
  std::vector<CounterSample> out;
  out.reserve(merged.size());
  for (const auto& [name, value] : merged) {
    if (value != 0) out.push_back({name, value});
  }
  return out;
}

std::uint64_t dropped_events() {
  std::uint64_t dropped = 0;
  for (const auto& st : snapshot_threads()) {
    const std::uint64_t head = st->head.load(std::memory_order_acquire);
    if (head > st->ring.size()) dropped += head - st->ring.size();
  }
  return dropped;
}

void reset() {
  for (const auto& st : snapshot_threads()) {
    st->head.store(0, std::memory_order_release);
    const std::lock_guard<std::mutex> lock(registry().mu);
    for (const auto& cell : st->cells) {
      cell->value.store(0, std::memory_order_relaxed);
    }
  }
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> evs = events();
  std::string out;
  out.reserve(evs.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"zka\"}}";
  char buf[64];
  for (const TraceEvent& e : evs) {
    out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", e.tid);
    out += buf;
    out += ",\"name\":";
    append_json_string(out, e.label);
    // Microsecond timestamps with nanosecond fraction preserved.
    std::snprintf(buf, sizeof(buf), ",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu}",
                  static_cast<unsigned long long>(e.start_ns / 1000),
                  static_cast<unsigned long long>(e.start_ns % 1000),
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out += buf;
  }
  out += "],\"zkaDroppedEvents\":";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(dropped_events()));
  out += buf;
  out += ",\"zkaCounters\":{";
  bool first = true;
  for (const CounterSample& c : counters()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, c.name);
    std::snprintf(buf, sizeof(buf), ":%llu",
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += "},\"zkaSummary\":[";
  first = true;
  for (const LabelSummary& s : summary()) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":";
    append_json_string(out, s.label);
    std::snprintf(buf, sizeof(buf), ",\"count\":%llu,\"total_ns\":%llu,",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.total_ns));
    out += buf;
    std::snprintf(
        buf, sizeof(buf), "\"min_ns\":%llu,\"max_ns\":%llu,",
        static_cast<unsigned long long>(s.min_ns),
        static_cast<unsigned long long>(s.max_ns));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"p50_ns\":%llu,\"p99_ns\":%llu}",
                  static_cast<unsigned long long>(s.p50_ns),
                  static_cast<unsigned long long>(s.p99_ns));
    out += buf;
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  ZKA_CHECK(out.good(), "prof::write_chrome_trace: cannot open %s",
            path.c_str());
  out << chrome_trace_json();
  out.flush();
  ZKA_CHECK(out.good(), "prof::write_chrome_trace: failed writing %s",
            path.c_str());
}

}  // namespace zka::util::prof
