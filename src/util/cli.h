// Minimal command-line flag parser for the bench/example binaries.
// Accepts `--key value`, `--key=value` and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace zka::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` was given (with or without a value).
  bool has(const std::string& name) const noexcept;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  std::int64_t get_int64(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Boolean flag: present without value, or with value in
  /// {1, true, yes, on} / {0, false, no, off}.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace zka::util
