#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace zka::util {

namespace {
template <typename T>
double mean_impl(std::span<const T> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const T x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}

template <typename T>
double variance_impl(std::span<const T> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_impl(xs);
  double sum = 0.0;
  for (const T x : xs) {
    const double d = static_cast<double>(x) - m;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size() - 1);
}
}  // namespace

double mean(std::span<const double> xs) noexcept { return mean_impl(xs); }
double mean(std::span<const float> xs) noexcept { return mean_impl(xs); }

double variance(std::span<const double> xs) noexcept { return variance_impl(xs); }
double variance(std::span<const float> xs) noexcept { return variance_impl(xs); }

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}
double stddev(std::span<const float> xs) noexcept {
  return std::sqrt(variance(xs));
}

namespace {
template <typename T>
T median_impl(std::vector<T>& xs) noexcept {
  ZKA_DCHECK(!xs.empty(), "median of empty range");
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  T hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + mid - 1, xs.begin() + mid);
  return static_cast<T>((static_cast<double>(xs[mid - 1]) +
                         static_cast<double>(hi)) /
                        2.0);
}
}  // namespace

double median(std::vector<double> xs) noexcept { return median_impl(xs); }
float median(std::vector<float> xs) noexcept { return median_impl(xs); }

double quantile(std::vector<double> xs, double q) noexcept {
  ZKA_DCHECK(!xs.empty(), "quantile of empty range");
  ZKA_DCHECK(q >= 0.0 && q <= 1.0, "quantile %g outside [0, 1]", q);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double inverse_normal_cdf(double p) noexcept {
  ZKA_DCHECK(p > 0.0 && p < 1.0, "inverse_normal_cdf: p=%g outside (0, 1)",
             p);
  // Peter Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  static constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double l2_norm(std::span<const float> xs) noexcept {
  double sum = 0.0;
  for (const float x : xs) {
    sum += static_cast<double>(x) * static_cast<double>(x);
  }
  return std::sqrt(sum);
}

double l2_distance(std::span<const float> a, std::span<const float> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "l2_distance: %zu vs %zu elements",
             a.size(), b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

double cosine_similarity(std::span<const float> a,
                         std::span<const float> b) noexcept {
  ZKA_DCHECK(a.size() == b.size(), "cosine_similarity: %zu vs %zu elements",
             a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void RunningStat::push(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace zka::util
