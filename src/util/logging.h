// Leveled stderr logger. Verbosity is process-global and settable from
// benches (`--verbose`) without threading a logger through every API.
#pragma once

#include <sstream>
#include <string>

namespace zka::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Messages below this level are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe single-line emit to stderr with a level prefix.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ZKA_LOG_DEBUG()                                               \
  if (::zka::util::log_level() > ::zka::util::LogLevel::kDebug) {     \
  } else                                                              \
    ::zka::util::detail::LogLine(::zka::util::LogLevel::kDebug)
#define ZKA_LOG_INFO()                                                \
  if (::zka::util::log_level() > ::zka::util::LogLevel::kInfo) {      \
  } else                                                              \
    ::zka::util::detail::LogLine(::zka::util::LogLevel::kInfo)
#define ZKA_LOG_WARN()                                                \
  if (::zka::util::log_level() > ::zka::util::LogLevel::kWarn) {      \
  } else                                                              \
    ::zka::util::detail::LogLine(::zka::util::LogLevel::kWarn)
#define ZKA_LOG_ERROR() ::zka::util::detail::LogLine(::zka::util::LogLevel::kError)

}  // namespace zka::util
