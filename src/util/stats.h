// Small statistics toolkit shared by defenses, attacks and metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace zka::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;
double mean(std::span<const float> xs) noexcept;

/// Unbiased (n-1) sample variance; 0 when fewer than two elements.
double variance(std::span<const double> xs) noexcept;
double variance(std::span<const float> xs) noexcept;

/// Square root of `variance`.
double stddev(std::span<const double> xs) noexcept;
double stddev(std::span<const float> xs) noexcept;

/// Median (average of the two middle elements for even sizes). Copies input.
double median(std::vector<double> xs) noexcept;
float median(std::vector<float> xs) noexcept;

/// Linear-interpolation quantile, q in [0, 1]. Copies input.
double quantile(std::vector<double> xs, double q) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). Requires 0 < p < 1.
double inverse_normal_cdf(double p) noexcept;

/// Standard normal CDF via std::erfc.
double normal_cdf(double x) noexcept;

/// L2 norm of a vector.
double l2_norm(std::span<const float> xs) noexcept;

/// Euclidean distance between equally sized vectors.
double l2_distance(std::span<const float> a, std::span<const float> b) noexcept;

/// Cosine similarity; 0 if either vector has zero norm.
double cosine_similarity(std::span<const float> a,
                         std::span<const float> b) noexcept;

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void push(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace zka::util
