#include "util/cli.h"

#include <stdexcept>

namespace zka::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const noexcept {
  return flags_.count(name) > 0;
}

std::optional<std::string> CliArgs::raw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stoi(*v);
}

std::int64_t CliArgs::get_int64(const std::string& name,
                                std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stoll(*v);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  return std::stod(*v);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") {
    return true;
  }
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("invalid boolean for --" + name + ": " + *v);
}

}  // namespace zka::util
