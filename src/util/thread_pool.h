// Fixed-size worker pool used to train the clients of an FL round in
// parallel. Tasks are type-erased std::function jobs; parallel_for provides
// a blocking index-range helper with deterministic per-index work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zka::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (hardware concurrency if 0).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a job; the future resolves when it completes.
  std::future<void> submit(std::function<void()> job);

  /// Runs body(i) for i in [0, n) across the pool and blocks until done.
  /// Exceptions from the body propagate to the caller (first one wins).
  ///
  /// Re-entrant: when called from inside one of this pool's workers (i.e.
  /// from within a parallel_for body or a submitted job), the whole range
  /// runs inline on the calling thread instead of enqueueing helper jobs —
  /// queued helpers would sit behind the blocked outer tasks (deadlocking a
  /// fully-busy pool) and oversubscribe the machine. Nested parallelism
  /// therefore degrades gracefully to sequential execution with identical
  /// results.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// True iff the calling thread is one of this pool's workers.
  bool in_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool, lazily constructed. FL simulations and the tensor
/// kernels share it so nested parallelism does not oversubscribe the
/// machine. Worker count is hardware concurrency, overridable with the
/// ZKA_THREADS environment variable (read once, at first use).
ThreadPool& global_thread_pool();

}  // namespace zka::util
