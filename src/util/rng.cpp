#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace zka::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  // Mix a fresh draw with the salt so different salts (and different parent
  // states) give independent streams.
  std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng{splitmix64(s)};
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gamma(double shape) noexcept {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t dim) noexcept {
  return dirichlet(std::vector<double>(dim, alpha));
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alphas) noexcept {
  std::vector<double> sample(alphas.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    sample[i] = gamma(alphas[i]);
    total += sample[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all-zero gammas): fall back to uniform proportions.
    for (auto& s : sample) s = 1.0 / static_cast<double>(sample.size());
    return sample;
  }
  for (auto& s : sample) s /= total;
  return sample;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  if (n <= kDenseSampleMax) {
    // Partial Fisher-Yates over a materialized pool. Kept for small
    // populations so historical seeds reproduce the exact same client
    // selections (the committed reference benches depend on them).
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform_index(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  // Floyd's algorithm (hash-set variant): for j = n-k .. n-1 draw
  // t ~ U[0, j]; take t unless already taken, else take j. Every k-subset
  // is equally likely, and cost is O(k) regardless of n. The returned
  // order is the insertion order, which is deterministic in the engine
  // state (it is *not* a uniformly random permutation of the subset —
  // callers that need one shuffle the result).
  std::vector<std::size_t> sample;
  sample.reserve(k);
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t =
        static_cast<std::size_t>(uniform_index(static_cast<std::uint64_t>(j) + 1));
    const std::size_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
    sample.push_back(pick);
  }
  return sample;
}

}  // namespace zka::util
