#include "util/check.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace zka::util::detail {

namespace {

std::string location_prefix(const char* kind, const char* cond,
                            const char* file, int line) {
  std::string msg(kind);
  msg += " failed: ";
  msg += cond;
  msg += " (";
  msg += file;
  msg += ':';
  msg += std::to_string(line);
  msg += ')';
  return msg;
}

}  // namespace

std::string contract_message(const char* kind, const char* cond,
                             const char* file, int line) {
  return location_prefix(kind, cond, file, line);
}

std::string contract_message(const char* kind, const char* cond,
                             const char* file, int line, const char* fmt,
                             ...) {
  std::string msg = location_prefix(kind, cond, file, line);
  msg += ": ";
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (needed > 0) {
    const std::size_t offset = msg.size();
    msg.resize(offset + static_cast<std::size_t>(needed));
    // C++11 strings are contiguous and writable through &msg[offset];
    // vsnprintf's terminating NUL lands on the string's own terminator.
    std::vsnprintf(msg.data() + offset, static_cast<std::size_t>(needed) + 1,
                   fmt, args);
  }
  va_end(args);
  return msg;
}

void contract_throw(const std::string& message) {
  throw ContractViolation(message);
}

void contract_abort(const std::string& message) noexcept {
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace zka::util::detail
