#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace zka::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width " + std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&] {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& title) const {
  if (!title.empty()) std::cout << title << '\n';
  std::cout << to_string() << std::flush;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  ZKA_CHECK(out.good(), "Table::write_csv: cannot open %s for writing",
            path.c_str());
  out << to_csv();
  out.flush();
  ZKA_CHECK(out.good(), "Table::write_csv: failed writing %s", path.c_str());
}

}  // namespace zka::util
