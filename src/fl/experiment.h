// Experiment orchestration shared by the bench binaries: named attack
// construction, repeated runs over seeds, and the paper's aggregate
// metrics (mean ASR / max-accuracy / DPR across repetitions).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/zka_options.h"
#include "fl/simulation.h"

namespace zka::fl {

enum class AttackKind {
  kNone,
  kFang,
  kLie,
  kMinMax,
  kZkaR,
  kZkaG,
  kZkaRStatic,   // Tab. IV: untrained filter layer
  kZkaGStatic,   // Tab. IV: untrained generator
  kRealData,     // Fig. 7 comparator
  kRandomWeights,  // Sec. IV-A strawman
  kLabelFlip,      // extension baseline
  kMinSum,         // extension: Shejwalkar's other defense-agnostic variant
  kFreeRider,      // extension: stealth reference point (no poisoning goal)
  kNaNInjection,   // extension: degenerate availability attack (A13 threat)
  kZkaRAdaptive,   // extension: online lambda adaptation (future work)
  kZkaGAdaptive,
  kFangKrum,       // extension: Fang's Krum-directed, defense-aware variant
};

const char* attack_kind_name(AttackKind kind) noexcept;

/// Parses "fang", "lie", "minmax", "zka-r", "zka-g", ... (throws on
/// unknown names).
AttackKind parse_attack_kind(const std::string& name);

/// Materializes an attack instance. `sim` supplies the attacker-owned
/// real data for kRealData/kLabelFlip; `zka` configures the ZKA variants.
std::unique_ptr<attack::Attack> make_attack(AttackKind kind,
                                            const Simulation& sim,
                                            const core::ZkaOptions& zka,
                                            std::uint64_t seed);

struct ExperimentOutcome {
  int runs = 0;
  double acc_natk = 0.0;    // mean attack-free/defense-free max accuracy (%)
  double max_acc = 0.0;     // mean max accuracy under attack (%)
  double asr = 0.0;         // mean attack success rate (%)
  double asr_stddev = 0.0;  // across repetitions
  double dpr = 0.0;         // mean defense pass rate (%); NaN if undefined
  /// Largest SimulationResult::peak_update_bytes across the attacked runs —
  /// what a memory_budget_bytes claim is checked against.
  std::size_t peak_update_bytes = 0;
};

/// Caches the attack-free/defense-free reference accuracy per (task, seed,
/// scale) so a bench sweeping defenses x attacks runs it only once.
class BaselineCache {
 public:
  /// Max accuracy (in [0,1]) of a FedAvg run without attack, at the given
  /// config but with defense forced to "fedavg" and no malicious clients.
  double attack_free_accuracy(SimulationConfig config);

  /// The cache key for `config`. Real-valued fields (beta, learning rate)
  /// are keyed by exact bit pattern, not decimal formatting — two configs
  /// differing past the default 6 significant ostream digits must not
  /// silently share a baseline. Exposed for the collision regression test.
  static std::string key(const SimulationConfig& config);

 private:
  std::map<std::string, double> cache_;
};

/// Runs `runs` repetitions of `config` with the given attack (seeds
/// config.seed, config.seed + 1, ...), using `baselines` for acc_natk.
ExperimentOutcome run_experiment(SimulationConfig config, AttackKind kind,
                                 const core::ZkaOptions& zka, int runs,
                                 BaselineCache& baselines);

}  // namespace zka::fl
