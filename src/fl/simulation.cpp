#include "fl/simulation.h"

#include <algorithm>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/metrics.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace zka::fl {

double SimulationResult::dpr() const noexcept {
  if (!defense_selects) return std::nan("");
  std::int64_t selected = 0;
  std::int64_t passed = 0;
  for (const RoundRecord& r : rounds) {
    selected += r.malicious_selected;
    passed += r.malicious_passed;
  }
  return defense_pass_rate(passed, selected);
}

double SimulationResult::benign_pass_rate() const noexcept {
  if (!defense_selects) return std::nan("");
  std::int64_t selected = 0;
  std::int64_t passed = 0;
  for (const RoundRecord& r : rounds) {
    selected += r.benign_selected;
    passed += r.benign_passed;
  }
  return defense_pass_rate(passed, selected);
}

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)),
      factory_(models::task_model_factory(config_.task)) {
  ZKA_CHECK(config_.clients_per_round > 0 &&
                config_.clients_per_round <= config_.num_clients,
            "Simulation: clients_per_round %lld outside [1, %lld]",
            static_cast<long long>(config_.clients_per_round),
            static_cast<long long>(config_.num_clients));
  // The threat model caps adversarial control at 50% (Sec. III-A).
  ZKA_CHECK(config_.malicious_fraction >= 0.0 &&
                config_.malicious_fraction <= 0.5,
            "Simulation: malicious_fraction %g must be in [0, 0.5]",
            config_.malicious_fraction);

  util::Rng rng(config_.seed);
  train_ = data::make_synthetic_dataset(config_.task, config_.train_size,
                                        rng.split(0xda7a)());
  test_ = data::make_synthetic_dataset(config_.task, config_.test_size,
                                       rng.split(0x7e57)());

  util::Rng part_rng = rng.split(0x9a27);
  const auto parts =
      config_.beta > 0.0
          ? data::dirichlet_partition(train_.labels, train_.spec.num_classes,
                                      config_.num_clients, config_.beta,
                                      part_rng)
          : data::iid_partition(train_.size(), config_.num_clients, part_rng);

  clients_.reserve(static_cast<std::size_t>(config_.num_clients));
  for (std::int64_t i = 0; i < config_.num_clients; ++i) {
    clients_.emplace_back(i, train_, parts[static_cast<std::size_t>(i)],
                          factory_, config_.client);
  }
  num_malicious_ = static_cast<std::int64_t>(
      config_.malicious_fraction * static_cast<double>(config_.num_clients));
  aggregator_ = config_.custom_defense
                    ? config_.custom_defense()
                    : defense::make_aggregator(config_.defense,
                                               config_.defense_f);
  ZKA_CHECK(aggregator_ != nullptr,
            "Simulation: custom_defense returned null");
}

data::Dataset Simulation::malicious_data() const {
  std::vector<std::int64_t> indices;
  for (std::int64_t c = 0; c < num_malicious_; ++c) {
    const auto& shard = clients_[static_cast<std::size_t>(c)].indices();
    indices.insert(indices.end(), shard.begin(), shard.end());
  }
  return train_.subset(indices);
}

SimulationResult Simulation::run(attack::Attack* attack) {
  ZKA_CHECK(attack == nullptr || num_malicious_ > 0,
            "Simulation: attack given but 0 malicious clients");
  util::Rng rng(config_.seed ^ 0xf00dULL);
  std::vector<float> global = nn::get_flat_params(*factory_(rng.split(2)()));
  std::vector<float> prev_global = global;

  SimulationResult result;
  result.defense_selects = aggregator_->selects_clients();
  result.rounds.reserve(static_cast<std::size_t>(config_.rounds));

  for (std::int64_t round = 0; round < config_.rounds; ++round) {
    ZKA_PROF_SCOPE("round");
    aggregator_->begin_round(global, round);
    util::Rng round_rng = rng.split(0x1000 + static_cast<std::uint64_t>(round));
    // Uniform client sampling without replacement.
    const auto sampled = round_rng.sample_without_replacement(
        static_cast<std::size_t>(config_.num_clients),
        static_cast<std::size_t>(config_.clients_per_round));

    std::vector<std::size_t> benign_ids;
    std::vector<std::size_t> malicious_ids;
    for (const std::size_t c : sampled) {
      if (attack != nullptr &&
          static_cast<std::int64_t>(c) < num_malicious_) {
        malicious_ids.push_back(c);
      } else {
        benign_ids.push_back(c);
      }
    }

    // Benign local training (parallel across clients, deterministic seeds).
    std::vector<defense::Update> benign_updates(benign_ids.size());
    {
      ZKA_PROF_SCOPE("client_train");
      auto train_one = [&](std::size_t k) {
        ZKA_PROF_SCOPE("client_train/one");
        const Client& client = clients_[benign_ids[k]];
        const std::uint64_t seed =
            config_.seed * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(round) * 1315423911ULL +
            static_cast<std::uint64_t>(client.id());
        benign_updates[k] = client.train(global, seed);
      };
      if (config_.parallel_clients) {
        util::global_thread_pool().parallel_for(benign_ids.size(), train_one);
      } else {
        for (std::size_t k = 0; k < benign_ids.size(); ++k) train_one(k);
      }
    }

    // Craft the malicious update once; all malicious clients submit it.
    defense::Update malicious_update;
    if (!malicious_ids.empty()) {
      ZKA_PROF_SCOPE("attack_craft");
      attack::AttackContext ctx;
      ctx.global_model = global;
      ctx.prev_global_model = prev_global;
      ctx.benign_updates =
          attack->needs_benign_updates() ? &benign_updates : nullptr;
      ctx.round = round;
      ctx.num_selected = config_.clients_per_round;
      ctx.num_malicious_selected =
          static_cast<std::int64_t>(malicious_ids.size());
      ctx.learning_rate = config_.client.learning_rate;
      malicious_update = attack->craft(ctx);
      ZKA_CHECK(malicious_update.size() == global.size(),
                "%s crafted %zu params, model has %zu",
                attack->name().c_str(), malicious_update.size(),
                global.size());
    }

    // Assemble the round's submissions in sampling order as views: every
    // malicious client shares the one crafted buffer instead of deep
    // copies, and benign updates stay in their training slots.
    std::vector<defense::UpdateView> updates;
    std::vector<std::int64_t> weights;
    std::vector<bool> is_malicious;
    updates.reserve(sampled.size());
    std::size_t benign_cursor = 0;
    for (const std::size_t c : sampled) {
      const bool mal =
          attack != nullptr && static_cast<std::int64_t>(c) < num_malicious_;
      is_malicious.push_back(mal);
      if (mal) {
        updates.emplace_back(malicious_update);
      } else {
        updates.emplace_back(benign_updates[benign_cursor]);
        ++benign_cursor;
      }
      weights.push_back(std::max<std::int64_t>(
          clients_[c].num_samples(), 1));
    }
    ZKA_DCHECK(benign_cursor == benign_updates.size(),
               "round %lld: %zu benign updates assembled, %zu trained",
               static_cast<long long>(round), benign_cursor,
               benign_updates.size());

    defense::AggregationResult agg;
    {
      ZKA_PROF_SCOPE("aggregate");
      agg = aggregator_->aggregate(updates, weights);
    }
    prev_global = std::move(global);
    global = agg.model;

    RoundRecord record;
    record.round = round;
    record.malicious_selected =
        static_cast<std::int64_t>(malicious_ids.size());
    record.benign_selected = static_cast<std::int64_t>(benign_ids.size());
    if (aggregator_->selects_clients()) {
      for (const std::size_t idx : agg.selected) {
        if (is_malicious.at(idx)) ++record.malicious_passed;
        else ++record.benign_passed;
      }
    }
    if (config_.eval_every > 0 &&
        (round % config_.eval_every == 0 || round + 1 == config_.rounds)) {
      ZKA_PROF_SCOPE("eval");
      record.accuracy = evaluate_accuracy(factory_, global, test_);
      // max_accuracy starts NaN (nothing evaluated yet); std::max would
      // propagate the NaN forever, so seed it from the first evaluation.
      result.max_accuracy = std::isnan(result.max_accuracy)
                                ? record.accuracy
                                : std::max(result.max_accuracy,
                                           record.accuracy);
      result.final_accuracy = record.accuracy;
    }
    result.rounds.push_back(record);
    if (round_callback_) round_callback_(result.rounds.back());
  }
  result.final_model = std::move(global);
  return result;
}

}  // namespace zka::fl
