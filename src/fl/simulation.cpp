#include "fl/simulation.h"

#include <algorithm>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/metrics.h"
#include "util/check.h"
#include "util/prof.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace zka::fl {
namespace {

/// Median of a sample-count list (lower middle for even sizes); 1 when the
/// list is empty. Sorts `counts` in place — callers pass a scratch copy —
/// so the round loop can reuse one buffer instead of allocating a by-value
/// copy every round. Used as the default attacker-reported FedAvg weight.
std::int64_t median_weight(std::vector<std::int64_t>& counts) {
  if (counts.empty()) return 1;
  std::sort(counts.begin(), counts.end());
  return counts[(counts.size() - 1) / 2];
}

}  // namespace

double SimulationResult::dpr() const noexcept {
  if (!defense_selects) return std::nan("");
  std::int64_t selected = 0;
  std::int64_t passed = 0;
  for (const RoundRecord& r : rounds) {
    selected += r.malicious_selected;
    passed += r.malicious_passed;
  }
  return defense_pass_rate(passed, selected);
}

double SimulationResult::benign_pass_rate() const noexcept {
  if (!defense_selects) return std::nan("");
  std::int64_t selected = 0;
  std::int64_t passed = 0;
  for (const RoundRecord& r : rounds) {
    selected += r.benign_selected;
    passed += r.benign_passed;
  }
  return defense_pass_rate(passed, selected);
}

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)),
      factory_(models::task_model_factory(config_.task)) {
  const bool production = config_.population > 0;
  const std::int64_t population =
      production ? config_.population : config_.num_clients;
  ZKA_CHECK(config_.clients_per_round > 0 &&
                config_.clients_per_round <= population,
            "Simulation: clients_per_round %lld outside [1, %lld]",
            static_cast<long long>(config_.clients_per_round),
            static_cast<long long>(population));
  // The threat model caps adversarial control at 50% (Sec. III-A).
  ZKA_CHECK(config_.malicious_fraction >= 0.0 &&
                config_.malicious_fraction <= 0.5,
            "Simulation: malicious_fraction %g must be in [0, 0.5]",
            config_.malicious_fraction);

  util::Rng rng(config_.seed);
  train_ = data::make_synthetic_dataset(config_.task, config_.train_size,
                                        rng.split(0xda7a)());
  test_ = data::make_synthetic_dataset(config_.task, config_.test_size,
                                       rng.split(0x7e57)());

  util::Rng part_rng = rng.split(0x9a27);
  if (production) {
    const data::HashedShardSpec spec(train_.size(), population,
                                     config_.samples_per_client, part_rng());
    registry_.emplace(train_, spec, factory_, config_.client,
                      config_.eager_registry);
  } else {
    auto parts =
        config_.beta > 0.0
            ? data::dirichlet_partition(train_.labels, train_.spec.num_classes,
                                        config_.num_clients, config_.beta,
                                        part_rng)
            : data::iid_partition(train_.size(), config_.num_clients,
                                  part_rng);
    registry_.emplace(train_, std::move(parts), factory_, config_.client);
  }

  num_malicious_ = static_cast<std::int64_t>(
      config_.malicious_fraction * static_cast<double>(population));
  if (config_.malicious_rounding == MaliciousRounding::kAtLeastOne &&
      config_.malicious_fraction > 0.0 && num_malicious_ == 0) {
    num_malicious_ = 1;
  }
  defense::AggregatorOptions agg_options;
  agg_options.num_byzantine = config_.defense_f;
  agg_options.sketch_dim = config_.sketch_dim;
  agg_options.memory_budget_bytes = config_.memory_budget_bytes;
  aggregator_ = config_.custom_defense
                    ? config_.custom_defense()
                    : defense::make_aggregator(config_.defense, agg_options);
  ZKA_CHECK(aggregator_ != nullptr,
            "Simulation: custom_defense returned null");
}

void Simulation::train_client_(std::size_t c, std::int64_t round,
                               std::span<const float> global,
                               defense::Update& out) const {
  ZKA_PROF_SCOPE("client_train/one");
  const Client client = registry_->client(static_cast<std::int64_t>(c));
  const std::uint64_t seed = config_.seed * 0x9e3779b97f4a7c15ULL +
                             static_cast<std::uint64_t>(round) * 1315423911ULL +
                             static_cast<std::uint64_t>(client.id());
  out = client.train(global, seed);
}

data::Dataset Simulation::malicious_data() const {
  std::vector<std::int64_t> indices;
  for (std::int64_t c = 0; c < num_malicious_; ++c) {
    const auto shard = registry_->shard(c);
    indices.insert(indices.end(), shard.begin(), shard.end());
  }
  return train_.subset(indices);
}

SimulationResult Simulation::run(attack::Attack* attack) {
  util::Rng rng(config_.seed ^ 0xf00dULL);
  std::vector<float> global = nn::get_flat_params(*factory_(rng.split(2)()));
  std::vector<float> prev_global = global;

  SimulationResult result;
  result.defense_selects = aggregator_->selects_clients();
  result.rounds.reserve(static_cast<std::size_t>(config_.rounds));

  const std::int64_t population = registry_->population();
  const std::size_t update_bytes = global.size() * sizeof(float);
  // A malicious client is one the adversary controls (by convention the
  // lowest ids, which under uniform sampling is distribution-equivalent to
  // any other fixed subset). With num_malicious_ == 0 — e.g. a sub-1%
  // fraction floored away at small populations — an attack degrades to a
  // clean baseline run instead of throwing.
  const auto is_malicious_id = [&](std::size_t c) {
    return attack != nullptr &&
           static_cast<std::int64_t>(c) < num_malicious_;
  };

  // Round-loop working buffers, hoisted above the hot loop and reused via
  // clear()/resize(): every vector here is bounded by clients_per_round,
  // which is fixed for the run, so one reserve covers all rounds and the
  // loop body itself allocates nothing. The per-client Update buffers are
  // owned by train_client_ and the attack — the analyzer's hot-path
  // boundaries, tracked against ROADMAP item 3's round arena.
  const std::size_t round_k =
      static_cast<std::size_t>(config_.clients_per_round);
  std::vector<std::size_t> benign_ids;
  std::vector<std::size_t> malicious_ids;
  std::vector<std::int64_t> benign_weights;
  std::vector<std::int64_t> median_scratch;
  std::vector<std::int64_t> weights;
  std::vector<std::size_t> wave_benign;
  std::vector<defense::Update> wave_updates;
  std::vector<defense::Update> benign_updates;
  std::vector<defense::UpdateView> updates;
  std::vector<bool> is_malicious;  // sampling-order flags (selection DPR)
  benign_ids.reserve(round_k);
  malicious_ids.reserve(round_k);
  benign_weights.reserve(round_k);
  median_scratch.reserve(round_k);
  weights.reserve(round_k);
  wave_benign.reserve(round_k);
  wave_updates.reserve(round_k);
  benign_updates.reserve(round_k);
  updates.reserve(round_k);
  is_malicious.reserve(round_k);

  for (std::int64_t round = 0; round < config_.rounds; ++round) {
    ZKA_PROF_SCOPE("round");
    aggregator_->begin_round(global, round);
    util::Rng round_rng = rng.split(0x1000 + static_cast<std::uint64_t>(round));
    // Uniform client sampling without replacement: O(clients_per_round)
    // regardless of population (Floyd above Rng::kDenseSampleMax).
    const auto sampled = round_rng.sample_without_replacement(
        static_cast<std::size_t>(population),
        static_cast<std::size_t>(config_.clients_per_round));

    benign_ids.clear();
    malicious_ids.clear();
    for (const std::size_t c : sampled) {
      if (is_malicious_id(c)) {
        malicious_ids.push_back(c);
      } else {
        benign_ids.push_back(c);
      }
    }
    const bool have_malicious = !malicious_ids.empty();

    // Per-client FedAvg weights are client-reported sample counts: benign
    // clients report their true shard size (registry lookup, no
    // materialization); malicious clients report whatever the attack
    // chooses (Attack::reported_weight, defaulting to the benign median)
    // — never a fabricated max(shard, 1).
    benign_weights.clear();
    for (const std::size_t c : benign_ids) {
      benign_weights.push_back(
          registry_->num_samples(static_cast<std::int64_t>(c)));
    }
    median_scratch.assign(benign_weights.begin(), benign_weights.end());
    const std::int64_t benign_median = median_weight(median_scratch);

    defense::Update malicious_update;
    std::int64_t malicious_weight = 0;
    const auto craft =
        [&](const std::vector<defense::Update>* round_benign) {
          ZKA_PROF_SCOPE("attack_craft");
          attack::AttackContext ctx;
          ctx.global_model = global;
          ctx.prev_global_model = prev_global;
          ctx.benign_updates =
              attack->needs_benign_updates() ? round_benign : nullptr;
          ctx.round = round;
          ctx.num_selected = config_.clients_per_round;
          ctx.num_malicious_selected =
              static_cast<std::int64_t>(malicious_ids.size());
          ctx.learning_rate = config_.client.learning_rate;
          ctx.benign_median_weight = benign_median;
          malicious_update = attack->craft(ctx);
          ZKA_CHECK(malicious_update.size() == global.size(),
                    "%s crafted %zu params, model has %zu",
                    attack->name().c_str(), malicious_update.size(),
                    global.size());
          malicious_weight = attack->reported_weight(ctx);
          ZKA_CHECK(malicious_weight >= 0,
                    "%s reported negative weight %lld",
                    attack->name().c_str(),
                    static_cast<long long>(malicious_weight));
        };

    // Streaming ingestion: with a fold-capable defense (and an attack that
    // does not demand the full benign update matrix) the round proceeds in
    // waves sized by the memory budget — train a wave, fold it, free it —
    // so the server never holds more than one wave of updates.
    const bool streaming =
        config_.memory_budget_bytes > 0 && aggregator_->supports_streaming() &&
        (attack == nullptr || !attack->needs_benign_updates());

    defense::AggregationResult agg;
    is_malicious.clear();
    std::size_t round_peak_bytes = 0;

    if (streaming) {
      // Data-free crafting: the attack sees the global models but no
      // benign updates (none exist yet — waves train after crafting).
      if (have_malicious) craft(nullptr);

      weights.clear();
      std::size_t benign_cursor = 0;
      for (const std::size_t c : sampled) {
        const bool mal = is_malicious_id(c);
        is_malicious.push_back(mal);
        weights.push_back(mal ? malicious_weight
                              : benign_weights[benign_cursor++]);
      }
      aggregator_->begin_stream(global.size(), weights);

      // The crafted buffer stays live across every wave, so it counts
      // against the budget alongside the wave's training slots. Peak live
      // bytes are therefore <= max(budget, 2 * update_bytes) — the floor
      // being one training slot plus the crafted update.
      const std::size_t capacity =
          config_.memory_budget_bytes / update_bytes;
      const std::size_t wave = std::clamp<std::size_t>(
          have_malicious && capacity > 1 ? capacity - 1 : capacity,
          std::size_t{1}, sampled.size());
      for (std::size_t start = 0; start < sampled.size(); start += wave) {
        const std::size_t end = std::min(start + wave, sampled.size());
        wave_benign.clear();
        for (std::size_t i = start; i < end; ++i) {
          if (!is_malicious_id(sampled[i])) wave_benign.push_back(sampled[i]);
        }
        // Slots beyond the previous wave's size are fresh; retained slots
        // are overwritten by train_client_ before the fold reads them.
        wave_updates.resize(wave_benign.size());
        {
          ZKA_PROF_SCOPE("client_train");
          const auto train_one = [&](std::size_t k) {
            train_client_(wave_benign[k], round, global, wave_updates[k]);
          };
          if (config_.parallel_clients) {
            util::global_thread_pool().parallel_for(wave_benign.size(),
                                                    train_one);
          } else {
            for (std::size_t k = 0; k < wave_benign.size(); ++k) {
              train_one(k);
            }
          }
        }
        round_peak_bytes = std::max(
            round_peak_bytes,
            (wave_updates.size() + (have_malicious ? 1 : 0)) * update_bytes);
        {
          ZKA_PROF_SCOPE("aggregate");
          std::size_t wave_cursor = 0;
          for (std::size_t i = start; i < end; ++i) {
            aggregator_->stream_update(is_malicious_id(sampled[i])
                                           ? defense::UpdateView(
                                                 malicious_update)
                                           : defense::UpdateView(
                                                 wave_updates[wave_cursor++]));
          }
          ZKA_DCHECK(wave_cursor == wave_updates.size(),
                     "round %lld: wave folded %zu of %zu benign updates",
                     static_cast<long long>(round), wave_cursor,
                     wave_updates.size());
        }
      }
      // Replay pass: a sketched defense asks for a bounded index set back
      // at full dimension (the exact re-check of its selection boundary).
      // Training is a pure function of (global model, seed) — the global
      // has not advanced yet — so re-training a benign client reproduces
      // its first-pass update bit-for-bit, and sybils re-submit the one
      // crafted buffer. Replays train in waves under the same budget.
      const auto replay = aggregator_->stream_replay_request();
      for (std::size_t start = 0; start < replay.size();) {
        wave_benign.clear();
        std::size_t end = start;
        while (end < replay.size() && wave_benign.size() < wave) {
          const std::size_t c = sampled[replay[end]];
          if (!is_malicious_id(c)) wave_benign.push_back(c);
          ++end;
        }
        wave_updates.resize(wave_benign.size());
        {
          ZKA_PROF_SCOPE("client_train");
          const auto train_one = [&](std::size_t k) {
            train_client_(wave_benign[k], round, global, wave_updates[k]);
          };
          if (config_.parallel_clients) {
            util::global_thread_pool().parallel_for(wave_benign.size(),
                                                    train_one);
          } else {
            for (std::size_t k = 0; k < wave_benign.size(); ++k) {
              train_one(k);
            }
          }
        }
        round_peak_bytes = std::max(
            round_peak_bytes,
            (wave_updates.size() + (have_malicious ? 1 : 0)) * update_bytes);
        {
          ZKA_PROF_SCOPE("aggregate");
          std::size_t wave_cursor = 0;
          for (std::size_t i = start; i < end; ++i) {
            const std::size_t idx = replay[i];
            aggregator_->stream_replay(
                idx, is_malicious_id(sampled[idx])
                         ? defense::UpdateView(malicious_update)
                         : defense::UpdateView(wave_updates[wave_cursor++]));
          }
        }
        start = end;
      }
      {
        ZKA_PROF_SCOPE("aggregate");
        agg = aggregator_->finish_stream();
      }
    } else {
      // Buffered path: the defense (or an omniscient attack) needs the
      // round's full update matrix, so the floor is clients_per_round live
      // buffers; a budget below that is a configuration error, not
      // something to paper over silently.
      ZKA_CHECK(
          config_.memory_budget_bytes == 0 ||
              config_.memory_budget_bytes >= sampled.size() * update_bytes,
          "Simulation: %s cannot stream, so the round needs %zu update "
          "bytes, above memory_budget_bytes %zu — raise the budget or use "
          "a streaming defense",
          aggregator_->name().c_str(), sampled.size() * update_bytes,
          config_.memory_budget_bytes);

      // Benign local training (parallel across clients, deterministic
      // seeds). Every slot in [0, benign_ids.size()) is overwritten.
      benign_updates.resize(benign_ids.size());
      {
        ZKA_PROF_SCOPE("client_train");
        const auto train_one = [&](std::size_t k) {
          train_client_(benign_ids[k], round, global, benign_updates[k]);
        };
        if (config_.parallel_clients) {
          util::global_thread_pool().parallel_for(benign_ids.size(),
                                                  train_one);
        } else {
          for (std::size_t k = 0; k < benign_ids.size(); ++k) train_one(k);
        }
      }

      // Craft the malicious update once; all malicious clients submit it.
      if (have_malicious) craft(&benign_updates);

      // Assemble the round's submissions in sampling order as views: every
      // malicious client shares the one crafted buffer instead of deep
      // copies, and benign updates stay in their training slots.
      updates.clear();
      weights.clear();
      std::size_t benign_cursor = 0;
      for (const std::size_t c : sampled) {
        const bool mal = is_malicious_id(c);
        is_malicious.push_back(mal);
        if (mal) {
          updates.emplace_back(malicious_update);
          weights.push_back(malicious_weight);
        } else {
          updates.emplace_back(benign_updates[benign_cursor]);
          weights.push_back(benign_weights[benign_cursor]);
          ++benign_cursor;
        }
      }
      ZKA_DCHECK(benign_cursor == benign_updates.size(),
                 "round %lld: %zu benign updates assembled, %zu trained",
                 static_cast<long long>(round), benign_cursor,
                 benign_updates.size());
      round_peak_bytes =
          (benign_updates.size() + (have_malicious ? 1 : 0)) * update_bytes;

      {
        ZKA_PROF_SCOPE("aggregate");
        agg = aggregator_->aggregate(updates, weights);
      }
    }
    result.peak_update_bytes =
        std::max(result.peak_update_bytes, round_peak_bytes);
    prev_global = std::move(global);
    global = std::move(agg.model);

    RoundRecord record;
    record.round = round;
    record.malicious_selected =
        static_cast<std::int64_t>(malicious_ids.size());
    record.benign_selected = static_cast<std::int64_t>(benign_ids.size());
    if (aggregator_->selects_clients()) {
      for (const std::size_t idx : agg.selected) {
        if (is_malicious.at(idx)) ++record.malicious_passed;
        else ++record.benign_passed;
      }
    }
    if (config_.eval_every > 0 &&
        (round % config_.eval_every == 0 || round + 1 == config_.rounds)) {
      ZKA_PROF_SCOPE("eval");
      record.accuracy = evaluate_accuracy(factory_, global, test_);
      // max_accuracy starts NaN (nothing evaluated yet); std::max would
      // propagate the NaN forever, so seed it from the first evaluation.
      result.max_accuracy = std::isnan(result.max_accuracy)
                                ? record.accuracy
                                : std::max(result.max_accuracy,
                                           record.accuracy);
      result.final_accuracy = record.accuracy;
    }
    result.rounds.push_back(record);
    if (round_callback_) round_callback_(result.rounds.back());
  }
  result.final_model = std::move(global);
  return result;
}

}  // namespace zka::fl
