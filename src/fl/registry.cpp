#include "fl/registry.h"

#include <utility>

#include "util/check.h"

namespace zka::fl {

ClientRegistry::ClientRegistry(const data::Dataset& dataset,
                               std::vector<std::vector<std::int64_t>> parts,
                               models::ModelFactory factory,
                               ClientOptions options)
    : dataset_(&dataset),
      parts_(std::move(parts)),
      factory_(std::move(factory)),
      options_(options),
      population_(static_cast<std::int64_t>(parts_.size())) {
  ZKA_CHECK(!parts_.empty(), "ClientRegistry: empty partition");
}

ClientRegistry::ClientRegistry(const data::Dataset& dataset,
                               data::HashedShardSpec spec,
                               models::ModelFactory factory,
                               ClientOptions options,
                               bool materialize_eagerly)
    : dataset_(&dataset),
      spec_(spec),
      factory_(std::move(factory)),
      options_(options),
      population_(spec.population()) {
  ZKA_CHECK(spec.dataset_size() == dataset.size(),
            "ClientRegistry: spec covers %lld samples, dataset has %lld",
            static_cast<long long>(spec.dataset_size()),
            static_cast<long long>(dataset.size()));
  if (materialize_eagerly) {
    parts_.reserve(static_cast<std::size_t>(population_));
    for (std::int64_t c = 0; c < population_; ++c) {
      parts_.push_back(spec_->shard(c));
    }
  }
}

void ClientRegistry::check_id(std::int64_t id) const {
  ZKA_CHECK(id >= 0 && id < population_,
            "ClientRegistry: client %lld outside [0, %lld)",
            static_cast<long long>(id),
            static_cast<long long>(population_));
}

std::int64_t ClientRegistry::num_samples(std::int64_t id) const {
  check_id(id);
  if (lazy()) return spec_->shard_size();
  return static_cast<std::int64_t>(parts_[static_cast<std::size_t>(id)].size());
}

std::vector<std::int64_t> ClientRegistry::shard(std::int64_t id) const {
  check_id(id);
  if (lazy()) return spec_->shard(id);
  return parts_[static_cast<std::size_t>(id)];
}

Client ClientRegistry::client(std::int64_t id) const {
  return Client(id, *dataset_, shard(id), factory_, options_);
}

}  // namespace zka::fl
