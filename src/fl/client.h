// Benign FL client: local SGD from the received global model (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/models.h"

namespace zka::fl {

struct ClientOptions {
  std::int64_t local_epochs = 1;  // the paper trains one local epoch
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;
};

class Client {
 public:
  /// `dataset` must outlive the client; `indices` select its local shard.
  Client(std::int64_t id, const data::Dataset& dataset,
         std::vector<std::int64_t> indices, models::ModelFactory factory,
         ClientOptions options);

  /// Trains a local model initialized from `global` and returns its flat
  /// parameters. Deterministic in (global, seed); safe to call from
  /// multiple clients concurrently.
  std::vector<float> train(std::span<const float> global,
                           std::uint64_t seed) const;

  std::int64_t id() const noexcept { return id_; }
  std::int64_t num_samples() const noexcept {
    return static_cast<std::int64_t>(indices_.size());
  }
  const std::vector<std::int64_t>& indices() const noexcept {
    return indices_;
  }

 private:
  std::int64_t id_;
  const data::Dataset* dataset_;
  std::vector<std::int64_t> indices_;
  models::ModelFactory factory_;
  ClientOptions options_;
};

}  // namespace zka::fl
