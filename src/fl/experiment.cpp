#include "fl/experiment.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "attack/fang.h"
#include "attack/free_rider.h"
#include "attack/nan_injection.h"
#include "attack/label_flip.h"
#include "attack/lie.h"
#include "attack/minmax.h"
#include "attack/random_weights.h"
#include "core/adaptive_zka.h"
#include "core/real_data.h"
#include "core/zka_g.h"
#include "core/zka_r.h"
#include "fl/metrics.h"
#include "util/check.h"
#include "util/stats.h"

namespace zka::fl {

const char* attack_kind_name(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kNone: return "None";
    case AttackKind::kFang: return "Fang";
    case AttackKind::kLie: return "LIE";
    case AttackKind::kMinMax: return "Min-Max";
    case AttackKind::kZkaR: return "ZKA-R";
    case AttackKind::kZkaG: return "ZKA-G";
    case AttackKind::kZkaRStatic: return "ZKA-R-static";
    case AttackKind::kZkaGStatic: return "ZKA-G-static";
    case AttackKind::kRealData: return "Real-data";
    case AttackKind::kRandomWeights: return "RandomWeights";
    case AttackKind::kLabelFlip: return "LabelFlip";
    case AttackKind::kMinSum: return "Min-Sum";
    case AttackKind::kFreeRider: return "FreeRider";
    case AttackKind::kNaNInjection: return "NaNInjection";
    case AttackKind::kZkaRAdaptive: return "ZKA-R-adaptive";
    case AttackKind::kZkaGAdaptive: return "ZKA-G-adaptive";
    case AttackKind::kFangKrum: return "Fang-Krum";
  }
  return "?";
}

AttackKind parse_attack_kind(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "fang") return AttackKind::kFang;
  if (name == "lie") return AttackKind::kLie;
  if (name == "minmax") return AttackKind::kMinMax;
  if (name == "zka-r") return AttackKind::kZkaR;
  if (name == "zka-g") return AttackKind::kZkaG;
  if (name == "zka-r-static") return AttackKind::kZkaRStatic;
  if (name == "zka-g-static") return AttackKind::kZkaGStatic;
  if (name == "real-data") return AttackKind::kRealData;
  if (name == "random-weights") return AttackKind::kRandomWeights;
  if (name == "label-flip") return AttackKind::kLabelFlip;
  if (name == "minsum") return AttackKind::kMinSum;
  if (name == "free-rider") return AttackKind::kFreeRider;
  if (name == "nan-injection") return AttackKind::kNaNInjection;
  if (name == "zka-r-adaptive") return AttackKind::kZkaRAdaptive;
  if (name == "zka-g-adaptive") return AttackKind::kZkaGAdaptive;
  if (name == "fang-krum") return AttackKind::kFangKrum;
  throw std::invalid_argument("unknown attack: " + name);
}

std::unique_ptr<attack::Attack> make_attack(AttackKind kind,
                                            const Simulation& sim,
                                            const core::ZkaOptions& zka,
                                            std::uint64_t seed) {
  const models::Task task = sim.config().task;
  switch (kind) {
    case AttackKind::kNone:
      return nullptr;
    case AttackKind::kFang:
      return std::make_unique<attack::FangAttack>(seed);
    case AttackKind::kLie:
      return std::make_unique<attack::LieAttack>();
    case AttackKind::kMinMax:
      return std::make_unique<attack::MinMaxAttack>();
    case AttackKind::kZkaR:
      return std::make_unique<core::ZkaRAttack>(task, zka, seed);
    case AttackKind::kZkaG:
      return std::make_unique<core::ZkaGAttack>(task, zka, seed);
    case AttackKind::kZkaRStatic: {
      core::ZkaOptions opts = zka;
      opts.train_synthesis = false;
      return std::make_unique<core::ZkaRAttack>(task, opts, seed);
    }
    case AttackKind::kZkaGStatic: {
      core::ZkaOptions opts = zka;
      opts.train_synthesis = false;
      return std::make_unique<core::ZkaGAttack>(task, opts, seed);
    }
    case AttackKind::kRealData:
      return std::make_unique<core::RealDataAttack>(task, sim.malicious_data(),
                                                    zka, seed);
    case AttackKind::kRandomWeights:
      return std::make_unique<attack::RandomWeightsAttack>(0.5f, seed);
    case AttackKind::kLabelFlip: {
      attack::LabelFlipOptions opts;
      opts.local_epochs = sim.config().client.local_epochs;
      opts.batch_size = sim.config().client.batch_size;
      opts.learning_rate = sim.config().client.learning_rate;
      return std::make_unique<attack::LabelFlipAttack>(
          sim.malicious_data(), models::task_model_factory(task), opts, seed);
    }
    case AttackKind::kMinSum:
      return std::make_unique<attack::MinSumAttack>();
    case AttackKind::kFreeRider:
      return std::make_unique<attack::FreeRiderAttack>(0.5, seed);
    case AttackKind::kNaNInjection:
      return std::make_unique<attack::NaNInjectionAttack>();
    case AttackKind::kZkaRAdaptive:
      return std::make_unique<core::AdaptiveZkaAttack>(
          task, core::ZkaVariant::kReverse, zka, core::AdaptiveOptions{},
          seed);
    case AttackKind::kZkaGAdaptive:
      return std::make_unique<core::AdaptiveZkaAttack>(
          task, core::ZkaVariant::kGenerator, zka, core::AdaptiveOptions{},
          seed);
    case AttackKind::kFangKrum:
      return std::make_unique<attack::FangKrumAttack>(
          sim.config().defense_f);
  }
  throw std::invalid_argument("make_attack: bad kind");
}

std::string BaselineCache::key(const SimulationConfig& config) {
  std::ostringstream key;
  // Floating-point fields go in as exact bit patterns: the default ostream
  // formatting rounds to 6 significant digits, which silently collided
  // configs differing past that precision.
  key << models::task_name(config.task) << '/' << config.seed << '/'
      << config.rounds << '/' << config.train_size << '/' << config.test_size
      << '/' << std::bit_cast<std::uint64_t>(config.beta) << '/'
      << config.num_clients << '/' << config.clients_per_round << '/'
      << std::bit_cast<std::uint32_t>(config.client.learning_rate) << '/'
      << config.client.local_epochs << '/' << config.client.batch_size << '/'
      << config.eval_every << '/' << config.population << '/'
      << config.samples_per_client;
  // memory_budget_bytes is deliberately absent: streaming ingestion is
  // bitwise-identical to the buffered path, so the budget cannot change a
  // baseline accuracy.
  return key.str();
}

double BaselineCache::attack_free_accuracy(SimulationConfig config) {
  config.defense = "fedavg";
  config.malicious_fraction = 0.0;
  const std::string cache_key = key(config);
  const auto it = cache_.find(cache_key);
  if (it != cache_.end()) return it->second;
  Simulation sim(config);
  const SimulationResult result = sim.run(nullptr);
  cache_[cache_key] = result.max_accuracy;
  return result.max_accuracy;
}

ExperimentOutcome run_experiment(SimulationConfig config, AttackKind kind,
                                 const core::ZkaOptions& zka, int runs,
                                 BaselineCache& baselines) {
  if (runs <= 0) throw std::invalid_argument("run_experiment: runs <= 0");
  // The outcome's accuracy/ASR means assume evaluated rounds; with
  // eval_every == 0 max_accuracy stays NaN and would poison them silently.
  ZKA_CHECK(config.eval_every > 0,
            "run_experiment: eval_every=%lld disables evaluation, so the "
            "accuracy metrics would all be NaN",
            static_cast<long long>(config.eval_every));
  ExperimentOutcome outcome;
  outcome.runs = runs;
  std::vector<double> asrs;
  util::RunningStat natk_stat;
  util::RunningStat acc_stat;
  util::RunningStat dpr_stat;
  bool dpr_defined = false;
  for (int r = 0; r < runs; ++r) {
    SimulationConfig run_config = config;
    run_config.seed = config.seed + static_cast<std::uint64_t>(r);
    const double acc_natk = baselines.attack_free_accuracy(run_config);
    natk_stat.push(acc_natk * 100.0);

    Simulation sim(run_config);
    const auto attack =
        make_attack(kind, sim, zka, run_config.seed ^ 0xa77acc);
    const SimulationResult result = sim.run(attack.get());
    outcome.peak_update_bytes =
        std::max(outcome.peak_update_bytes, result.peak_update_bytes);
    acc_stat.push(result.max_accuracy * 100.0);
    asrs.push_back(attack_success_rate(acc_natk, result.max_accuracy));
    const double dpr = result.dpr();
    if (!std::isnan(dpr)) {
      dpr_defined = true;
      dpr_stat.push(dpr);
    }
  }
  outcome.acc_natk = natk_stat.mean();
  outcome.max_acc = acc_stat.mean();
  outcome.asr = util::mean(std::span<const double>(asrs));
  outcome.asr_stddev = util::stddev(std::span<const double>(asrs));
  outcome.dpr = dpr_defined ? dpr_stat.mean() : std::nan("");
  return outcome;
}

}  // namespace zka::fl
