// The paper's two evaluation metrics (Sec. V-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "models/models.h"

namespace zka::fl {

/// Attack success rate (Eq. 4): relative accuracy drop, in percent.
/// acc_natk is the attack-free/defense-free accuracy; acc_max the best
/// accuracy the attacked run reached.
double attack_success_rate(double acc_natk, double acc_max) noexcept;

/// Defense pass rate (Eq. 5): passed / selected malicious submissions,
/// in percent. Returns NaN when no malicious client was ever selected
/// (e.g. statistic defenses where DPR is undefined).
double defense_pass_rate(std::int64_t passed, std::int64_t selected) noexcept;

/// Test accuracy of a flat parameter vector on a dataset (batched
/// inference through a freshly materialized model).
double evaluate_accuracy(const models::ModelFactory& factory,
                         std::span<const float> params,
                         const data::Dataset& dataset,
                         std::int64_t batch_size = 64);

/// Row-major L x L confusion matrix: entry [true][predicted] counts test
/// samples. Useful for diagnosing ZKA's decoy-class bias — the poisoned
/// model over-predicts Ỹ, which shows up as a bright column.
struct ConfusionMatrix {
  std::int64_t num_classes = 0;
  std::vector<std::int64_t> counts;  // num_classes * num_classes

  std::int64_t at(std::int64_t truth, std::int64_t predicted) const;
  /// Per-class recall (diagonal / row sum); NaN for absent classes.
  std::vector<double> per_class_accuracy() const;
  /// Overall accuracy (trace / total).
  double accuracy() const noexcept;
  /// The class predicted most often across all samples.
  std::int64_t most_predicted_class() const;
};

ConfusionMatrix evaluate_confusion(const models::ModelFactory& factory,
                                   std::span<const float> params,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size = 64);

/// Backdoor success rate (targeted-attack metric, extension): fraction of
/// *triggered* test images classified as `target_label`, excluding images
/// whose true label already is the target (their prediction is correct
/// either way). Returns NaN if no eligible images exist.
double backdoor_success_rate(const models::ModelFactory& factory,
                             std::span<const float> params,
                             const data::Dataset& clean_test,
                             std::int64_t target_label,
                             std::int64_t trigger_size,
                             std::int64_t batch_size = 64);

}  // namespace zka::fl
