// The FL emulator: a population of N clients, K sampled uniformly per
// round, a fraction of them controlled by one adversary, a robust
// aggregation defense on the server, and per-round accuracy /
// defense-selection bookkeeping — the paper's experimental apparatus
// (Sec. V-A), extended to the production cross-device regime
// (populations of 10^5-10^6 devices, a few hundred sampled per round,
// attacker fractions well under 1%; Shejwalkar et al.).
//
// Two population modes share one round loop:
//   * legacy (population == 0): `num_clients` shards materialized eagerly
//     from the IID/Dirichlet partition — the paper's Table-2 setup,
//     bit-compatible with historical seeds;
//   * production (population > 0): a lazy ClientRegistry over a
//     HashedShardSpec instantiates only the clients sampled this round;
//     sampling is O(K) (Floyd), and with a streaming-capable defense the
//     server trains in waves sized by `memory_budget_bytes`, never holding
//     more than a wave of updates at once.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "defense/aggregator.h"
#include "fl/client.h"
#include "fl/registry.h"
#include "models/models.h"

namespace zka::fl {

/// How `floor(malicious_fraction * population)` rounds when the product is
/// fractional. kFloor (default, the historical behaviour) can round a
/// small positive fraction down to zero attackers — such a run now
/// executes as a clean baseline instead of throwing, so sub-1% fraction
/// sweeps report the zero-attacker point instead of crashing. kAtLeastOne
/// guarantees the adversary controls at least one client whenever
/// malicious_fraction > 0.
enum class MaliciousRounding { kFloor, kAtLeastOne };

struct SimulationConfig {
  models::Task task = models::Task::kFashion;
  std::int64_t num_clients = 100;
  std::int64_t clients_per_round = 10;
  /// Fraction of the population the adversary controls (paper: 0.2).
  double malicious_fraction = 0.2;
  /// Attacker-count rounding policy (see MaliciousRounding).
  MaliciousRounding malicious_rounding = MaliciousRounding::kFloor;
  std::int64_t rounds = 30;
  /// Dirichlet concentration beta; values <= 0 select an IID partition.
  /// Legacy mode only — production mode shards through HashedShardSpec.
  double beta = 0.5;
  std::int64_t train_size = 2000;
  std::int64_t test_size = 500;
  ClientOptions client = {};
  /// Aggregator name for defense::make_aggregator.
  std::string defense = "fedavg";
  /// The server's assumed Byzantine bound f (also TRmean's trim count).
  std::size_t defense_f = 2;
  /// JL sketch dimension for the distance-based defenses (krum, mkrum,
  /// bulyan): rank on O(sketch_dim) projections, re-check the selection
  /// boundary exactly at full dimension (defense/sketch.h). Enables the
  /// O(n)-memory streaming server path for one-shot Krum rules; 0 keeps
  /// the exact rules. Ignored by defenses without a sketched path.
  std::size_t sketch_dim = 0;
  /// When set, overrides `defense`: the factory is invoked once at
  /// construction to build the aggregator (e.g. an FlTrust instance that
  /// needs a root dataset, or a user-defined rule).
  std::function<std::unique_ptr<defense::Aggregator>()> custom_defense;
  std::uint64_t seed = 1;
  /// Train the sampled benign clients of a round on the thread pool.
  bool parallel_clients = true;
  /// Evaluate test accuracy every k rounds (1 = every round).
  std::int64_t eval_every = 1;

  // ── Production cross-device mode ─────────────────────────────────────
  /// Device population size. 0 (default) selects the legacy eager path
  /// over `num_clients`; > 0 selects the lazy registry path, in which
  /// `num_clients` and `beta` are ignored.
  std::int64_t population = 0;
  /// Per-device shard size in production mode (clamped to train_size).
  std::int64_t samples_per_client = 32;
  /// Server memory budget for update ingestion, in bytes. 0 = unbounded.
  /// With a streaming defense (FedAvg; sketched mkrum/krum via sketch_dim;
  /// median/trmean through tree aggregation) the round trains in waves of
  /// floor(budget / update_bytes) clients (minimum 1) and folds each wave
  /// before training the next, so at most one wave of updates is live.
  /// Defenses that request a streaming replay (the sketched rules' exact
  /// re-check) get the requested clients re-trained in waves under the
  /// same budget — training is a pure function of (global, seed), so the
  /// replayed bits match the first pass. Non-streaming defenses need all
  /// clients_per_round updates at once; configuring a budget below that
  /// throws at run() time.
  std::size_t memory_budget_bytes = 0;
  /// Materialize every lazy shard up front (testing / memory-comparison
  /// knob; production mode only). Must be bitwise-equivalent to the lazy
  /// path — the determinism tests enforce it.
  bool eager_registry = false;
};

struct RoundRecord {
  std::int64_t round = 0;
  /// Test accuracy after this round's aggregation; NaN if not evaluated.
  double accuracy = std::nan("");
  std::int64_t malicious_selected = 0;  // sampled malicious clients
  std::int64_t malicious_passed = 0;    // of those, kept by the defense
  std::int64_t benign_selected = 0;
  std::int64_t benign_passed = 0;
};

struct SimulationResult {
  std::vector<RoundRecord> rounds;
  /// Best / last evaluated test accuracy; NaN (like RoundRecord::accuracy)
  /// when no round was evaluated (eval_every == 0), so an unevaluated run
  /// is distinguishable from a genuine 0%-accuracy run.
  double max_accuracy = std::numeric_limits<double>::quiet_NaN();
  double final_accuracy = std::numeric_limits<double>::quiet_NaN();
  /// The global model after the last round (flat parameter vector).
  std::vector<float> final_model;
  /// Whether the defense reports selections (DPR defined).
  bool defense_selects = false;
  /// Largest number of update-buffer bytes (benign training slots + the
  /// shared crafted buffer) the server held live at any point of the run —
  /// the quantity memory_budget_bytes bounds in streaming rounds.
  std::size_t peak_update_bytes = 0;

  /// Defense pass rate over the whole run (Eq. 5); NaN when undefined.
  double dpr() const noexcept;
  /// Benign analogue of DPR (how often benign updates survive).
  double benign_pass_rate() const noexcept;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  /// Runs the configured number of rounds. `attack` may be nullptr for an
  /// attack-free run; otherwise every sampled malicious client submits the
  /// update crafted once per round by `attack`. An attack whose rounded
  /// attacker count is zero runs as a clean baseline (no crafting, zero
  /// malicious selections) rather than throwing.
  SimulationResult run(attack::Attack* attack);

  /// Invoked after every round (e.g. to capture synthesis loss curves).
  void set_round_callback(std::function<void(const RoundRecord&)> callback) {
    round_callback_ = std::move(callback);
  }

  const SimulationConfig& config() const noexcept { return config_; }
  const data::Dataset& train_data() const noexcept { return train_; }
  const data::Dataset& test_data() const noexcept { return test_; }
  /// Population size actually simulated (num_clients in legacy mode,
  /// config.population in production mode).
  std::int64_t population() const noexcept { return registry_->population(); }
  std::int64_t num_malicious() const noexcept { return num_malicious_; }
  const ClientRegistry& registry() const noexcept { return *registry_; }

  /// The pooled real data of the malicious clients' shards — what the
  /// adversary would own if it used its clients' data (RealDataAttack,
  /// LabelFlipAttack). O(num_malicious · shard) — fine in the legacy
  /// regime it serves; data-free attacks never call it, so production-
  /// scale populations do not pay it.
  data::Dataset malicious_data() const;

 private:
  /// Trains one sampled benign client into `out` (a reused slot). The
  /// seed is a deterministic mix of run seed, round, and client id, so the
  /// result is independent of scheduling order. Named (rather than a
  /// lambda in run()) because it is the analyzer's hot-path boundary: its
  /// per-client model allocations are owned here, not by run()'s loop.
  void train_client_(std::size_t c, std::int64_t round,
                     std::span<const float> global,
                     defense::Update& out) const;

  SimulationConfig config_;
  models::ModelFactory factory_;
  data::Dataset train_;
  data::Dataset test_;
  std::optional<ClientRegistry> registry_;
  std::int64_t num_malicious_ = 0;
  std::unique_ptr<defense::Aggregator> aggregator_;
  std::function<void(const RoundRecord&)> round_callback_;
};

}  // namespace zka::fl
