// The FL emulator: N clients, K sampled uniformly per round, a fraction of
// them controlled by one adversary, a robust aggregation defense on the
// server, and per-round accuracy / defense-selection bookkeeping — the
// paper's experimental apparatus (Sec. V-A).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "data/dataset.h"
#include "defense/aggregator.h"
#include "fl/client.h"
#include "models/models.h"

namespace zka::fl {

struct SimulationConfig {
  models::Task task = models::Task::kFashion;
  std::int64_t num_clients = 100;
  std::int64_t clients_per_round = 10;
  /// Fraction of the N clients the adversary controls (paper: 0.2).
  double malicious_fraction = 0.2;
  std::int64_t rounds = 30;
  /// Dirichlet concentration beta; values <= 0 select an IID partition.
  double beta = 0.5;
  std::int64_t train_size = 2000;
  std::int64_t test_size = 500;
  ClientOptions client = {};
  /// Aggregator name for defense::make_aggregator.
  std::string defense = "fedavg";
  /// The server's assumed Byzantine bound f (also TRmean's trim count).
  std::size_t defense_f = 2;
  /// When set, overrides `defense`: the factory is invoked once at
  /// construction to build the aggregator (e.g. an FlTrust instance that
  /// needs a root dataset, or a user-defined rule).
  std::function<std::unique_ptr<defense::Aggregator>()> custom_defense;
  std::uint64_t seed = 1;
  /// Train the sampled benign clients of a round on the thread pool.
  bool parallel_clients = true;
  /// Evaluate test accuracy every k rounds (1 = every round).
  std::int64_t eval_every = 1;
};

struct RoundRecord {
  std::int64_t round = 0;
  /// Test accuracy after this round's aggregation; NaN if not evaluated.
  double accuracy = std::nan("");
  std::int64_t malicious_selected = 0;  // sampled malicious clients
  std::int64_t malicious_passed = 0;    // of those, kept by the defense
  std::int64_t benign_selected = 0;
  std::int64_t benign_passed = 0;
};

struct SimulationResult {
  std::vector<RoundRecord> rounds;
  /// Best / last evaluated test accuracy; NaN (like RoundRecord::accuracy)
  /// when no round was evaluated (eval_every == 0), so an unevaluated run
  /// is distinguishable from a genuine 0%-accuracy run.
  double max_accuracy = std::numeric_limits<double>::quiet_NaN();
  double final_accuracy = std::numeric_limits<double>::quiet_NaN();
  /// The global model after the last round (flat parameter vector).
  std::vector<float> final_model;
  /// Whether the defense reports selections (DPR defined).
  bool defense_selects = false;

  /// Defense pass rate over the whole run (Eq. 5); NaN when undefined.
  double dpr() const noexcept;
  /// Benign analogue of DPR (how often benign updates survive).
  double benign_pass_rate() const noexcept;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  /// Runs the configured number of rounds. `attack` may be nullptr for an
  /// attack-free run; otherwise every sampled malicious client submits the
  /// update crafted once per round by `attack`.
  SimulationResult run(attack::Attack* attack);

  /// Invoked after every round (e.g. to capture synthesis loss curves).
  void set_round_callback(std::function<void(const RoundRecord&)> callback) {
    round_callback_ = std::move(callback);
  }

  const SimulationConfig& config() const noexcept { return config_; }
  const data::Dataset& train_data() const noexcept { return train_; }
  const data::Dataset& test_data() const noexcept { return test_; }
  std::int64_t num_malicious() const noexcept { return num_malicious_; }

  /// The pooled real data of the malicious clients' shards — what the
  /// adversary would own if it used its clients' data (RealDataAttack,
  /// LabelFlipAttack).
  data::Dataset malicious_data() const;

 private:
  SimulationConfig config_;
  models::ModelFactory factory_;
  data::Dataset train_;
  data::Dataset test_;
  std::vector<Client> clients_;
  std::int64_t num_malicious_ = 0;
  std::unique_ptr<defense::Aggregator> aggregator_;
  std::function<void(const RoundRecord&)> round_callback_;
};

}  // namespace zka::fl
