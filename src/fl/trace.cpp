#include "fl/trace.h"

#include <cmath>

namespace zka::fl {

util::Table trace_table(const SimulationResult& result) {
  util::Table table({"round", "accuracy", "malicious_selected",
                     "malicious_passed", "benign_selected", "benign_passed"});
  for (const RoundRecord& r : result.rounds) {
    table.add_row({std::to_string(r.round),
                   std::isnan(r.accuracy) ? ""
                                          : util::Table::fmt(r.accuracy, 4),
                   std::to_string(r.malicious_selected),
                   std::to_string(r.malicious_passed),
                   std::to_string(r.benign_selected),
                   std::to_string(r.benign_passed)});
  }
  return table;
}

void write_trace_csv(const SimulationResult& result,
                     const std::string& path) {
  trace_table(result).write_csv(path);
}

}  // namespace zka::fl
