// Round-trace export: turns a SimulationResult into a CSV table so runs
// can be plotted or diffed outside the process.
#pragma once

#include <string>

#include "fl/simulation.h"
#include "util/table.h"

namespace zka::fl {

/// One row per round: round, accuracy, malicious selected/passed, benign
/// selected/passed (empty accuracy cell for non-evaluated rounds).
util::Table trace_table(const SimulationResult& result);

/// Writes trace_table(result) as CSV to `path`.
void write_trace_csv(const SimulationResult& result, const std::string& path);

}  // namespace zka::fl
