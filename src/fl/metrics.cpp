#include "fl/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "attack/backdoor.h"
#include "nn/loss.h"
#include "util/check.h"

namespace zka::fl {

double attack_success_rate(double acc_natk, double acc_max) noexcept {
  if (acc_natk <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return (acc_natk - acc_max) / acc_natk * 100.0;
}

double defense_pass_rate(std::int64_t passed, std::int64_t selected) noexcept {
  if (selected <= 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(passed) / static_cast<double>(selected) * 100.0;
}

double evaluate_accuracy(const models::ModelFactory& factory,
                         std::span<const float> params,
                         const data::Dataset& dataset,
                         std::int64_t batch_size) {
  ZKA_CHECK(batch_size > 0, "evaluate_accuracy: batch_size %lld",
            static_cast<long long>(batch_size));
  auto model = factory(0);
  nn::set_flat_params(*model, params);
  const std::int64_t n = dataset.size();
  if (n == 0) return 0.0;
  std::int64_t hits = 0;
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, n);
    const tensor::Tensor batch = dataset.images.slice0(begin, end);
    const auto preds = model->forward(batch).argmax_rows();
    for (std::int64_t i = begin; i < end; ++i) {
      if (preds[static_cast<std::size_t>(i - begin)] ==
          dataset.labels[static_cast<std::size_t>(i)]) {
        ++hits;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

std::int64_t ConfusionMatrix::at(std::int64_t truth,
                                 std::int64_t predicted) const {
  if (truth < 0 || truth >= num_classes || predicted < 0 ||
      predicted >= num_classes) {
    throw std::out_of_range("ConfusionMatrix::at: class out of range");
  }
  return counts[static_cast<std::size_t>(truth * num_classes + predicted)];
}

std::vector<double> ConfusionMatrix::per_class_accuracy() const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes));
  for (std::int64_t c = 0; c < num_classes; ++c) {
    std::int64_t row_total = 0;
    for (std::int64_t p = 0; p < num_classes; ++p) row_total += at(c, p);
    acc[static_cast<std::size_t>(c)] =
        row_total > 0 ? static_cast<double>(at(c, c)) / row_total
                      : std::numeric_limits<double>::quiet_NaN();
  }
  return acc;
}

double ConfusionMatrix::accuracy() const noexcept {
  std::int64_t total = 0;
  std::int64_t hits = 0;
  for (std::int64_t c = 0; c < num_classes; ++c) {
    for (std::int64_t p = 0; p < num_classes; ++p) {
      const std::int64_t n =
          counts[static_cast<std::size_t>(c * num_classes + p)];
      total += n;
      if (c == p) hits += n;
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

std::int64_t ConfusionMatrix::most_predicted_class() const {
  std::int64_t best = 0;
  std::int64_t best_count = -1;
  for (std::int64_t p = 0; p < num_classes; ++p) {
    std::int64_t column = 0;
    for (std::int64_t c = 0; c < num_classes; ++c) column += at(c, p);
    if (column > best_count) {
      best_count = column;
      best = p;
    }
  }
  return best;
}

ConfusionMatrix evaluate_confusion(const models::ModelFactory& factory,
                                   std::span<const float> params,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size) {
  ZKA_CHECK(batch_size > 0 && dataset.spec.num_classes > 0,
            "evaluate_confusion: batch_size %lld, %lld classes",
            static_cast<long long>(batch_size),
            static_cast<long long>(dataset.spec.num_classes));
  auto model = factory(0);
  nn::set_flat_params(*model, params);
  ConfusionMatrix cm;
  cm.num_classes = dataset.spec.num_classes;
  cm.counts.assign(
      static_cast<std::size_t>(cm.num_classes * cm.num_classes), 0);
  const std::int64_t n = dataset.size();
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, n);
    const tensor::Tensor batch = dataset.images.slice0(begin, end);
    const auto preds = model->forward(batch).argmax_rows();
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t truth =
          dataset.labels[static_cast<std::size_t>(i)];
      const std::int64_t predicted =
          preds[static_cast<std::size_t>(i - begin)];
      cm.counts[static_cast<std::size_t>(truth * cm.num_classes +
                                         predicted)] += 1;
    }
  }
  return cm;
}

double backdoor_success_rate(const models::ModelFactory& factory,
                             std::span<const float> params,
                             const data::Dataset& clean_test,
                             std::int64_t target_label,
                             std::int64_t trigger_size,
                             std::int64_t batch_size) {
  // Build the triggered copy of all non-target-class test images.
  std::vector<std::int64_t> eligible;
  eligible.reserve(static_cast<std::size_t>(clean_test.size()));
  for (std::int64_t i = 0; i < clean_test.size(); ++i) {
    if (clean_test.labels[static_cast<std::size_t>(i)] != target_label) {
      eligible.push_back(i);
    }
  }
  if (eligible.empty()) return std::numeric_limits<double>::quiet_NaN();
  data::Dataset triggered = clean_test.subset(eligible);
  attack::apply_trigger(triggered.images, trigger_size);

  auto model = factory(0);
  nn::set_flat_params(*model, params);
  std::int64_t hits = 0;
  const std::int64_t n = triggered.size();
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, n);
    const auto preds =
        model->forward(triggered.images.slice0(begin, end)).argmax_rows();
    for (const auto p : preds) {
      if (p == target_label) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace zka::fl
