// Lazy client registry: the production-scale replacement for materializing
// one fl::Client per population member.
//
// Cross-device FL populations (10^5-10^6 devices, a few hundred sampled per
// round) make "a vector of all clients" the dominant memory cost of the
// simulator, even though at most clients_per_round of them ever train in a
// round. The registry instead stores only a *description* of the
// population — either a materialized per-client partition (the legacy
// small-n path: IID / Dirichlet label-skew shards) or a data::HashedShardSpec
// whose shards are computed on demand in O(shard) — and instantiates a
// Client only when the round sampler actually picks it. Sample counts are
// available without materialization, so FedAvg weights and the benign
// median weight cost O(k) per round, not O(population).
//
// Lazy and eager registries over the same spec are interchangeable:
// Client training is a pure function of (shard, global model, seed), so the
// simulation's thread-count-invariance and lazy-vs-eager bitwise
// determinism tests hold by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "fl/client.h"
#include "models/models.h"

namespace zka::fl {

class ClientRegistry {
 public:
  /// Eager registry over a materialized partition (legacy path; the
  /// population is parts.size()). `dataset` must outlive the registry.
  ClientRegistry(const data::Dataset& dataset,
                 std::vector<std::vector<std::int64_t>> parts,
                 models::ModelFactory factory, ClientOptions options);

  /// Registry over a lazy shard spec. With `materialize_eagerly` the
  /// entire partition is computed up front (the legacy memory behaviour —
  /// used by the bitwise lazy-vs-eager parity tests and as an
  /// apples-to-apples memory comparison point); otherwise shards exist
  /// only while a sampled client is live.
  ClientRegistry(const data::Dataset& dataset, data::HashedShardSpec spec,
                 models::ModelFactory factory, ClientOptions options,
                 bool materialize_eagerly = false);

  std::int64_t population() const noexcept { return population_; }

  /// True when shards are computed on demand (nothing stored per client).
  bool lazy() const noexcept { return spec_.has_value() && parts_.empty(); }

  /// Sample count of client `id` without materializing it: O(1) for lazy
  /// registries (every shard has spec.shard_size() samples).
  std::int64_t num_samples(std::int64_t id) const;

  /// Client `id`'s shard indices (computed on demand when lazy).
  std::vector<std::int64_t> shard(std::int64_t id) const;

  /// Materializes client `id`. Cheap: the client owns a copy of its shard
  /// index list and borrows everything else.
  Client client(std::int64_t id) const;

 private:
  void check_id(std::int64_t id) const;

  const data::Dataset* dataset_;
  std::optional<data::HashedShardSpec> spec_;
  std::vector<std::vector<std::int64_t>> parts_;  // empty when lazy
  models::ModelFactory factory_;
  ClientOptions options_;
  std::int64_t population_ = 0;
};

}  // namespace zka::fl
