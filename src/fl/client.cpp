#include "fl/client.h"

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "util/check.h"
#include "util/rng.h"

namespace zka::fl {

Client::Client(std::int64_t id, const data::Dataset& dataset,
               std::vector<std::int64_t> indices, models::ModelFactory factory,
               ClientOptions options)
    : id_(id), dataset_(&dataset), indices_(std::move(indices)),
      factory_(std::move(factory)), options_(options) {}

std::vector<float> Client::train(std::span<const float> global,
                                 std::uint64_t seed) const {
  ZKA_CHECK(!global.empty(), "Client %lld: empty global model",
            static_cast<long long>(id_));
  util::Rng rng(seed);
  auto model = factory_(rng.split(1)());
  nn::set_flat_params(*model, global);
  if (indices_.empty()) return nn::get_flat_params(*model);

  nn::Sgd optimizer(*model, {.learning_rate = options_.learning_rate});
  nn::SoftmaxCrossEntropy loss;
  data::DataLoader loader(*dataset_, indices_, options_.batch_size);
  for (std::int64_t epoch = 0; epoch < options_.local_epochs; ++epoch) {
    loader.shuffle(rng);
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.batch(b);
      optimizer.zero_grad();
      const tensor::Tensor logits = model->forward(batch.images);
      loss.forward(logits, batch.labels);
      model->backward(loss.backward());
      optimizer.step();
    }
  }
  return nn::get_flat_params(*model);
}

}  // namespace zka::fl
