// Free-rider (Lin et al. / Fraboni et al.) — extension baseline. Not an
// untargeted attack: the client wants the global model without doing any
// work, so it returns the broadcast model plus small Gaussian noise that
// imitates the look of a real local update. Useful as a stealth reference
// point — its DPR should be near-perfect while its ASR stays near zero.
#pragma once

#include "attack/attack.h"
#include "util/rng.h"

namespace zka::attack {

class FreeRiderAttack : public Attack {
 public:
  /// Noise is scaled to `noise_fraction` of the round-to-round global
  /// drift ||w(t) - w(t-1)|| (so it shrinks as training converges, like
  /// genuine updates do).
  explicit FreeRiderAttack(double noise_fraction = 0.5,
                           std::uint64_t seed = 0xf4ee)
      : noise_fraction_(noise_fraction), rng_(seed) {}

  Update craft(const AttackContext& ctx) override;
  std::string name() const override { return "FreeRider"; }

 private:
  double noise_fraction_;
  util::Rng rng_;
};

}  // namespace zka::attack
