// Fang et al. (USENIX Security 2020) — local model poisoning against
// TRmean/Median (the full-knowledge variant, the only one with public
// source; the paper under reproduction uses the same choice, Sec. V-B).
//
// Per coordinate j the attacker estimates the benign direction
// s_j = sign(mean_j(benign) - w(t)_j) and submits a value on the far side
// of the benign range in the *opposite* direction: below min_j when the
// benign mean is increasing, above max_j when decreasing, scaled by a
// random factor in [1, 2] as in the original algorithm.
#pragma once

#include "attack/attack.h"
#include "util/rng.h"

namespace zka::attack {

class FangAttack : public Attack {
 public:
  explicit FangAttack(std::uint64_t seed = 0xfa46) : rng_(seed) {}

  Update craft(const AttackContext& ctx) override;
  bool needs_benign_updates() const noexcept override { return true; }
  std::string name() const override { return "Fang"; }

 private:
  util::Rng rng_;
};

/// Fang's Krum-directed variant (extension; requires knowing the defense,
/// matching the original paper's strongest threat model). Crafts
/// w' = w(t) - lambda * s with s = sign(mean(benign) - w(t)), then halves
/// lambda until w' would be chosen by Krum from {w' x m, benign...} —
/// i.e. the attacker simulates the defense it knows the server runs.
class FangKrumAttack : public Attack {
 public:
  /// `defense_f` is the f the server's Krum uses; `lambda_init` the
  /// starting step; `lambda_threshold` the give-up point.
  explicit FangKrumAttack(std::size_t defense_f, double lambda_init = 1.0,
                          double lambda_threshold = 1e-5)
      : defense_f_(defense_f), lambda_init_(lambda_init),
        lambda_threshold_(lambda_threshold) {}

  Update craft(const AttackContext& ctx) override;
  bool needs_benign_updates() const noexcept override { return true; }
  std::string name() const override { return "Fang-Krum"; }

  /// The lambda the last craft() settled on (0 if it gave up).
  double last_lambda() const noexcept { return last_lambda_; }

 private:
  std::size_t defense_f_;
  double lambda_init_;
  double lambda_threshold_;
  double last_lambda_ = 0.0;
};

}  // namespace zka::attack
