// Classic label-flipping data poisoning (Tolpegin et al., ESORICS 2020) —
// an extension baseline beyond the paper's comparison set. The attacker
// *does* own data here; it trains the local model on labels mapped
// y -> (L - 1) - y.
#pragma once

#include <memory>

#include "attack/attack.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/rng.h"

namespace zka::attack {

struct LabelFlipOptions {
  std::int64_t local_epochs = 1;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;
};

class LabelFlipAttack : public Attack {
 public:
  LabelFlipAttack(data::Dataset dataset, models::ModelFactory factory,
                  LabelFlipOptions options, std::uint64_t seed);

  Update craft(const AttackContext& ctx) override;
  std::string name() const override { return "LabelFlip"; }

 private:
  data::Dataset dataset_;
  models::ModelFactory factory_;
  LabelFlipOptions options_;
  util::Rng rng_;
};

}  // namespace zka::attack
