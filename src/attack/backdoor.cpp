#include "attack/backdoor.h"

#include <algorithm>
#include <stdexcept>

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/sgd.h"

namespace zka::attack {

void apply_trigger(tensor::Tensor& images, std::int64_t trigger_size) {
  if (images.rank() != 4) {
    throw std::invalid_argument("apply_trigger: expected [N, C, H, W]");
  }
  const std::int64_t n = images.dim(0);
  const std::int64_t c = images.dim(1);
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  const std::int64_t size = std::min({trigger_size, h, w});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < size; ++y) {
        for (std::int64_t x = 0; x < size; ++x) {
          images.at({s, ch, y, x}) = 1.0f;
        }
      }
    }
  }
}

BackdoorAttack::BackdoorAttack(data::Dataset dataset,
                               models::ModelFactory factory,
                               BackdoorOptions options, std::uint64_t seed)
    : dataset_(std::move(dataset)), factory_(std::move(factory)),
      options_(options), rng_(seed) {
  if (dataset_.size() == 0) {
    throw std::invalid_argument("BackdoorAttack: empty attacker dataset");
  }
  if (options_.target_label < 0 ||
      options_.target_label >= dataset_.spec.num_classes) {
    throw std::invalid_argument("BackdoorAttack: target label out of range");
  }
  // Poison a fraction of the attacker's samples once, up front.
  const std::int64_t to_poison = static_cast<std::int64_t>(
      options_.poison_fraction * static_cast<double>(dataset_.size()));
  const auto picked = rng_.sample_without_replacement(
      static_cast<std::size_t>(dataset_.size()),
      static_cast<std::size_t>(std::clamp<std::int64_t>(
          to_poison, 0, dataset_.size())));
  for (const std::size_t i : picked) {
    std::vector<std::int64_t> one{static_cast<std::int64_t>(i)};
    tensor::Tensor img = dataset_.images.index_select0(one);
    apply_trigger(img, options_.trigger_size);
    // Write the stamped image back.
    const std::int64_t pixels = dataset_.spec.pixels();
    std::copy(img.data().begin(), img.data().end(),
              dataset_.images.data().begin() +
                  static_cast<std::int64_t>(i) * pixels);
    dataset_.labels[i] = options_.target_label;
  }
}

Update BackdoorAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  auto model = factory_(rng_.split(1)());
  nn::set_flat_params(*model, ctx.global_model);
  nn::Sgd optimizer(*model, {.learning_rate = options_.learning_rate});
  nn::SoftmaxCrossEntropy loss;
  data::DataLoader loader(dataset_, options_.batch_size);
  for (std::int64_t epoch = 0; epoch < options_.local_epochs; ++epoch) {
    loader.shuffle(rng_);
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.batch(b);
      optimizer.zero_grad();
      loss.forward(model->forward(batch.images), batch.labels);
      model->backward(loss.backward());
      optimizer.step();
    }
  }
  Update crafted = nn::get_flat_params(*model);
  if (options_.boost != 1.0f) {
    // Model replacement: amplify the delta so the FedAvg dilution of
    // 1/K is cancelled by a boost of ~K.
    for (std::size_t i = 0; i < crafted.size(); ++i) {
      crafted[i] = ctx.global_model[i] +
                   options_.boost * (crafted[i] - ctx.global_model[i]);
    }
  }
  return crafted;
}

}  // namespace zka::attack
