// Targeted backdoor attack (Bagdasaryan et al., AISTATS 2020) — extension
// beyond the paper's untargeted scope (their related-work Sec. VI).
//
// The attacker owns real data; it stamps a small bright trigger patch
// into a fraction of its samples, relabels them to the target class,
// trains locally, and optionally *boosts* the update (model replacement:
// w_m = w(t) + scale * (w_trained - w(t))) so one accepted update can
// implant the backdoor. Untargeted ASR stays near zero by design — the
// point is high backdoor success on triggered inputs, measured with
// fl::backdoor_success_rate.
#pragma once

#include "attack/attack.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/rng.h"

namespace zka::attack {

struct BackdoorOptions {
  std::int64_t target_label = 0;
  /// Trigger: a patch of +1 pixels in the image corner.
  std::int64_t trigger_size = 4;
  /// Fraction of the attacker's samples that get stamped + relabeled.
  double poison_fraction = 0.5;
  /// Model-replacement boost (1 = plain local training).
  float boost = 1.0f;
  std::int64_t local_epochs = 2;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;
};

/// Stamps the trigger patch (value +1) into the top-left corner of every
/// image of `images` ([N, C, H, W]) in place.
void apply_trigger(tensor::Tensor& images, std::int64_t trigger_size);

class BackdoorAttack : public Attack {
 public:
  BackdoorAttack(data::Dataset dataset, models::ModelFactory factory,
                 BackdoorOptions options, std::uint64_t seed);

  Update craft(const AttackContext& ctx) override;
  std::string name() const override { return "Backdoor"; }

  std::int64_t target_label() const noexcept { return options_.target_label; }

 private:
  data::Dataset dataset_;  // already poisoned at construction
  models::ModelFactory factory_;
  BackdoorOptions options_;
  util::Rng rng_;
};

}  // namespace zka::attack
