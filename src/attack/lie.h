// "A Little Is Enough" (Baruch et al., NeurIPS 2019).
//
// Crafts w_m = mean(benign) + z * std(benign) coordinate-wise, where z is
// the largest shift that keeps the malicious update within the range the
// defense tolerates, derived from the normal quantile of the supporter
// fraction: s = floor(n/2 + 1) - m, z = Phi^-1((n - m - s) / (n - m)).
#pragma once

#include "attack/attack.h"

namespace zka::attack {

class LieAttack : public Attack {
 public:
  /// z_override != 0 fixes z instead of deriving it from (n, m).
  explicit LieAttack(double z_override = 0.0) : z_override_(z_override) {}

  Update craft(const AttackContext& ctx) override;
  bool needs_benign_updates() const noexcept override { return true; }
  std::string name() const override { return "LIE"; }

  /// The z used by the last craft() (for tests / logging).
  double last_z() const noexcept { return last_z_; }

  /// The paper's z formula, exposed for testing.
  static double compute_z(std::int64_t n, std::int64_t m);

 private:
  double z_override_;
  double last_z_ = 0.0;
};

}  // namespace zka::attack
