#include "attack/label_flip.h"

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace zka::attack {

LabelFlipAttack::LabelFlipAttack(data::Dataset dataset,
                                 models::ModelFactory factory,
                                 LabelFlipOptions options, std::uint64_t seed)
    : dataset_(std::move(dataset)), factory_(std::move(factory)),
      options_(options), rng_(seed) {
  // Flip labels once, up front.
  for (auto& y : dataset_.labels) y = dataset_.spec.num_classes - 1 - y;
}

Update LabelFlipAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  auto model = factory_(rng_.split(1)());
  nn::set_flat_params(*model, ctx.global_model);
  nn::Sgd optimizer(*model, {.learning_rate = options_.learning_rate});
  nn::SoftmaxCrossEntropy loss;
  data::DataLoader loader(dataset_, options_.batch_size);
  for (std::int64_t epoch = 0; epoch < options_.local_epochs; ++epoch) {
    loader.shuffle(rng_);
    for (std::int64_t b = 0; b < loader.num_batches(); ++b) {
      const data::Batch batch = loader.batch(b);
      optimizer.zero_grad();
      const tensor::Tensor logits = model->forward(batch.images);
      loss.forward(logits, batch.labels);
      model->backward(loss.backward());
      optimizer.step();
    }
  }
  return nn::get_flat_params(*model);
}

}  // namespace zka::attack
