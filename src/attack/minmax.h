// Min-Max attack (Shejwalkar & Houmansadr, NDSS 2021), the
// defense-agnostic ("AGR-agnostic") variant compared against in the paper.
//
// Malicious update: mean(benign) + gamma * p where p is a fixed
// perturbation direction and gamma is the largest value such that the
// crafted update's maximum distance to any benign update does not exceed
// the maximum pairwise distance among benign updates — i.e. the update is
// as harmful as possible while staying inside the benign spread.
#pragma once

#include <functional>

#include "attack/attack.h"

namespace zka::attack {

enum class Perturbation {
  kInverseUnit,  // -mean / ||mean||
  kInverseStd,   // -std (coordinate-wise)
  kInverseSign,  // -sign(mean)
};

const char* perturbation_name(Perturbation p) noexcept;

class MinMaxAttack : public Attack {
 public:
  explicit MinMaxAttack(Perturbation perturbation = Perturbation::kInverseStd)
      : perturbation_(perturbation) {}

  Update craft(const AttackContext& ctx) override;
  bool needs_benign_updates() const noexcept override { return true; }
  std::string name() const override { return "Min-Max"; }

  /// The gamma found by the last craft() (for tests / logging).
  double last_gamma() const noexcept { return last_gamma_; }

 private:
  Perturbation perturbation_;
  double last_gamma_ = 0.0;
};

/// Min-Sum (same paper) — extension baseline. Identical template, but the
/// constraint bounds the *sum* of squared distances from the crafted
/// update to all benign updates by the maximum such sum among benign
/// updates. The paper under reproduction cites it as the other
/// defense-agnostic variant (weaker than Min-Max, hence not in its main
/// comparison).
class MinSumAttack : public Attack {
 public:
  explicit MinSumAttack(Perturbation perturbation = Perturbation::kInverseStd)
      : perturbation_(perturbation) {}

  Update craft(const AttackContext& ctx) override;
  bool needs_benign_updates() const noexcept override { return true; }
  std::string name() const override { return "Min-Sum"; }

  double last_gamma() const noexcept { return last_gamma_; }

 private:
  Perturbation perturbation_;
  double last_gamma_ = 0.0;
};

/// Shared by Min-Max/Min-Sum: the perturbation direction p computed from
/// the benign updates (exposed for tests).
Update perturbation_direction(Perturbation kind,
                              const std::vector<Update>& benign);

/// Largest gamma in [0, 1e6] such that fits(mean + gamma * p) holds,
/// found by geometric growth + bisection to ~1% relative precision.
double maximize_gamma(const Update& mean, const Update& perturb,
                      const std::function<bool(const Update&)>& fits);

}  // namespace zka::attack
