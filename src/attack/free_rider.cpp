#include "attack/free_rider.h"

#include <cmath>

#include "util/stats.h"

namespace zka::attack {

Update FreeRiderAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const std::size_t dim = ctx.global_model.size();
  const double drift =
      util::l2_distance(ctx.global_model, ctx.prev_global_model);
  // First round (or a converged model): fall back to a tiny absolute scale.
  const double target_norm =
      drift > 0.0 ? noise_fraction_ * drift : 1e-3;
  const double per_coord =
      target_norm / std::sqrt(static_cast<double>(dim));
  Update crafted(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    crafted[i] = ctx.global_model[i] +
                 static_cast<float>(rng_.normal(0.0, per_coord));
  }
  return crafted;
}

}  // namespace zka::attack
