// Random-weights strawman (Sec. IV-A of the paper): submit a freshly
// drawn random model. Almost never passes distance defenses — the paper
// reports 2.62% / 6.57% mKrum DPR — which is what motivates synthesizing
// data instead of manipulating weights directly.
#pragma once

#include "attack/attack.h"
#include "util/rng.h"

namespace zka::attack {

class RandomWeightsAttack : public Attack {
 public:
  /// Draws each weight uniformly from [-range, range].
  explicit RandomWeightsAttack(float range = 0.5f, std::uint64_t seed = 0x3ad)
      : range_(range), rng_(seed) {}

  Update craft(const AttackContext& ctx) override;
  std::string name() const override { return "RandomWeights"; }

 private:
  float range_;
  util::Rng rng_;
};

}  // namespace zka::attack
