#include "attack/random_weights.h"

namespace zka::attack {

Update RandomWeightsAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  Update crafted(ctx.global_model.size());
  for (auto& w : crafted) {
    w = static_cast<float>(rng_.uniform(-range_, range_));
  }
  return crafted;
}

}  // namespace zka::attack
