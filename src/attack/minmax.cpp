#include "attack/minmax.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace zka::attack {

const char* perturbation_name(Perturbation p) noexcept {
  switch (p) {
    case Perturbation::kInverseUnit: return "inverse-unit";
    case Perturbation::kInverseStd: return "inverse-std";
    case Perturbation::kInverseSign: return "inverse-sign";
  }
  return "?";
}

Update perturbation_direction(Perturbation kind,
                              const std::vector<Update>& benign) {
  const std::size_t dim = benign.front().size();
  const std::size_t nb = benign.size();
  Update mean(dim, 0.0f);
  for (const Update& u : benign) {
    for (std::size_t i = 0; i < dim; ++i) mean[i] += u[i];
  }
  for (auto& m : mean) m /= static_cast<float>(nb);

  Update perturb(dim, 0.0f);
  switch (kind) {
    case Perturbation::kInverseUnit: {
      const double norm = util::l2_norm(mean);
      for (std::size_t i = 0; i < dim; ++i) {
        perturb[i] = norm > 0.0
                         ? static_cast<float>(-static_cast<double>(mean[i]) /
                                              norm)
                         : 0.0f;
      }
      break;
    }
    case Perturbation::kInverseStd: {
      std::vector<float> column(nb);
      for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t k = 0; k < nb; ++k) column[k] = benign[k][i];
        perturb[i] = static_cast<float>(
            -util::stddev(std::span<const float>(column)));
      }
      break;
    }
    case Perturbation::kInverseSign: {
      for (std::size_t i = 0; i < dim; ++i) {
        perturb[i] = mean[i] > 0.0f ? -1.0f : (mean[i] < 0.0f ? 1.0f : 0.0f);
      }
      break;
    }
  }
  return perturb;
}

double maximize_gamma(const Update& mean, const Update& perturb,
                      const std::function<bool(const Update&)>& fits) {
  auto crafted_at = [&](double gamma) {
    Update u(mean.size());
    for (std::size_t i = 0; i < mean.size(); ++i) {
      u[i] = mean[i] + static_cast<float>(gamma) * perturb[i];
    }
    return u;
  };
  double lo = 0.0;
  double hi = 1.0;
  if (fits(crafted_at(hi))) {
    while (fits(crafted_at(hi)) && hi < 1e6) {
      lo = hi;
      hi *= 2.0;
    }
  }
  for (int iter = 0; iter < 30 && hi - lo > 0.01 * std::max(1.0, lo);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fits(crafted_at(mid))) lo = mid;
    else hi = mid;
  }
  return lo;
}

namespace {

Update benign_mean(const std::vector<Update>& benign) {
  Update mean(benign.front().size(), 0.0f);
  for (const Update& u : benign) {
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += u[i];
  }
  for (auto& m : mean) m /= static_cast<float>(benign.size());
  return mean;
}

Update crafted_from(const Update& mean, const Update& perturb, double gamma) {
  Update u(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i) {
    u[i] = mean[i] + static_cast<float>(gamma) * perturb[i];
  }
  return u;
}

}  // namespace

Update MinMaxAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const auto& benign = *ctx.benign_updates;
  const Update mean = benign_mean(benign);
  const Update perturb = perturbation_direction(perturbation_, benign);

  // Budget: max pairwise distance among benign updates.
  double budget = 0.0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    for (std::size_t j = i + 1; j < benign.size(); ++j) {
      budget = std::max(budget, util::l2_distance(benign[i], benign[j]));
    }
  }
  auto fits = [&](const Update& u) {
    double worst = 0.0;
    for (const Update& b : benign) {
      worst = std::max(worst, util::l2_distance(u, b));
    }
    return worst <= budget;
  };
  last_gamma_ = maximize_gamma(mean, perturb, fits);
  return crafted_from(mean, perturb, last_gamma_);
}

Update MinSumAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const auto& benign = *ctx.benign_updates;
  const Update mean = benign_mean(benign);
  const Update perturb = perturbation_direction(perturbation_, benign);

  // Budget: max over benign i of sum_j ||b_i - b_j||^2.
  double budget = 0.0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < benign.size(); ++j) {
      const double d = util::l2_distance(benign[i], benign[j]);
      sum += d * d;
    }
    budget = std::max(budget, sum);
  }
  auto fits = [&](const Update& u) {
    double sum = 0.0;
    for (const Update& b : benign) {
      const double d = util::l2_distance(u, b);
      sum += d * d;
    }
    return sum <= budget;
  };
  last_gamma_ = maximize_gamma(mean, perturb, fits);
  return crafted_from(mean, perturb, last_gamma_);
}

}  // namespace zka::attack
