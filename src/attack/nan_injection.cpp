#include "attack/nan_injection.h"

#include <limits>

#include "util/check.h"

namespace zka::attack {

Update NaNInjectionAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  ZKA_CHECK(stride_ > 0, "NaNInjection: stride must be positive");
  const std::size_t dim = ctx.global_model.size();
  Update crafted(ctx.global_model.begin(), ctx.global_model.end());
  bool flip = false;
  for (std::size_t i = 0; i < dim; i += stride_) {
    crafted[i] = flip ? std::numeric_limits<float>::infinity()
                      : std::numeric_limits<float>::quiet_NaN();
    flip = !flip;
  }
  return crafted;
}

}  // namespace zka::attack
