#include "attack/lie.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace zka::attack {

void validate_context(const Attack& attack, const AttackContext& ctx) {
  const std::string name = attack.name();
  ZKA_CHECK(!ctx.global_model.empty(), "%s: empty global model", name.c_str());
  ZKA_CHECK(ctx.prev_global_model.size() == ctx.global_model.size(),
            "%s: prev model has %zu params, current has %zu", name.c_str(),
            ctx.prev_global_model.size(), ctx.global_model.size());
  ZKA_CHECK(ctx.round >= 0, "%s: negative round %lld", name.c_str(),
            static_cast<long long>(ctx.round));
  // Client-count invariants: K >= m >= 0 whenever K is provided (some unit
  // tests craft with K left at 0, which compute_z treats as degenerate).
  ZKA_CHECK(ctx.num_selected >= 0 && ctx.num_malicious_selected >= 0,
            "%s: negative client counts (K=%lld, m=%lld)", name.c_str(),
            static_cast<long long>(ctx.num_selected),
            static_cast<long long>(ctx.num_malicious_selected));
  ZKA_CHECK(ctx.num_selected == 0 ||
                ctx.num_malicious_selected <= ctx.num_selected,
            "%s: m=%lld malicious among K=%lld selected clients",
            name.c_str(), static_cast<long long>(ctx.num_malicious_selected),
            static_cast<long long>(ctx.num_selected));
  ZKA_CHECK(ctx.benign_median_weight >= 0,
            "%s: negative benign median weight %lld", name.c_str(),
            static_cast<long long>(ctx.benign_median_weight));
  if (attack.needs_benign_updates()) {
    ZKA_CHECK(ctx.benign_updates != nullptr && !ctx.benign_updates->empty(),
              "%s is omniscient and requires benign updates", name.c_str());
    for (std::size_t k = 0; k < ctx.benign_updates->size(); ++k) {
      const Update& u = (*ctx.benign_updates)[k];
      ZKA_CHECK(u.size() == ctx.global_model.size(),
                "%s: benign update %zu has %zu params, expected %zu",
                name.c_str(), k, u.size(), ctx.global_model.size());
    }
  }
}

double LieAttack::compute_z(std::int64_t n, std::int64_t m) {
  // n participants, m of them malicious; s benign supporters needed.
  const std::int64_t s = n / 2 + 1 - m;
  const std::int64_t benign = n - m;
  if (benign <= 0) return 0.0;
  double p = static_cast<double>(benign - s) / static_cast<double>(benign);
  p = std::clamp(p, 1e-6, 1.0 - 1e-6);
  return util::inverse_normal_cdf(p);
}

Update LieAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const auto& benign = *ctx.benign_updates;
  const std::size_t dim = ctx.global_model.size();
  const std::size_t nb = benign.size();

  last_z_ = z_override_ != 0.0
                ? z_override_
                : compute_z(ctx.num_selected, ctx.num_malicious_selected);

  Update crafted(dim);
  std::vector<float> column(nb);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < nb; ++k) column[k] = benign[k][i];
    const double mu = util::mean(std::span<const float>(column));
    const double sigma = util::stddev(std::span<const float>(column));
    crafted[i] = static_cast<float>(mu + last_z_ * sigma);
  }
  return crafted;
}

}  // namespace zka::attack
