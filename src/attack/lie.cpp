#include "attack/lie.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace zka::attack {

void validate_context(const Attack& attack, const AttackContext& ctx) {
  if (ctx.global_model.empty()) {
    throw std::invalid_argument(attack.name() + ": empty global model");
  }
  if (ctx.prev_global_model.size() != ctx.global_model.size()) {
    throw std::invalid_argument(attack.name() + ": prev model size mismatch");
  }
  if (attack.needs_benign_updates()) {
    if (ctx.benign_updates == nullptr || ctx.benign_updates->empty()) {
      throw std::invalid_argument(
          attack.name() + " is omniscient and requires benign updates");
    }
    for (const Update& u : *ctx.benign_updates) {
      if (u.size() != ctx.global_model.size()) {
        throw std::invalid_argument(attack.name() +
                                    ": benign update size mismatch");
      }
    }
  }
}

double LieAttack::compute_z(std::int64_t n, std::int64_t m) {
  // n participants, m of them malicious; s benign supporters needed.
  const std::int64_t s = n / 2 + 1 - m;
  const std::int64_t benign = n - m;
  if (benign <= 0) return 0.0;
  double p = static_cast<double>(benign - s) / static_cast<double>(benign);
  p = std::clamp(p, 1e-6, 1.0 - 1e-6);
  return util::inverse_normal_cdf(p);
}

Update LieAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const auto& benign = *ctx.benign_updates;
  const std::size_t dim = ctx.global_model.size();
  const std::size_t nb = benign.size();

  last_z_ = z_override_ != 0.0
                ? z_override_
                : compute_z(ctx.num_selected, ctx.num_malicious_selected);

  Update crafted(dim);
  std::vector<float> column(nb);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < nb; ++k) column[k] = benign[k][i];
    const double mu = util::mean(std::span<const float>(column));
    const double sigma = util::stddev(std::span<const float>(column));
    crafted[i] = static_cast<float>(mu + last_z_ * sigma);
  }
  return crafted;
}

}  // namespace zka::attack
