// NaN injection — the degenerate data-free poisoning attack the A13 taint
// rule exists for. The crafted update is the broadcast model with a
// handful of coordinates replaced by NaN (or +Inf): any mean-based rule
// that folds it without a finite check propagates the poison to every
// coordinate it touches, so a single sybil in a single round destroys the
// global model. Against the ingress sanitize layer (defense/sanitize.h,
// on by default) the poisoned coordinates are zeroed at admission and the
// attack degrades to a weak free-rider — the collapse/recovery pair is
// demonstrated end-to-end in tests/test_sanitize.cpp.
#pragma once

#include "attack/attack.h"

namespace zka::attack {

class NaNInjectionAttack : public Attack {
 public:
  /// Poisons every `stride`-th coordinate, alternating NaN and +Inf.
  /// stride = 1 poisons the whole update.
  explicit NaNInjectionAttack(std::size_t stride = 1) : stride_(stride) {}

  Update craft(const AttackContext& ctx) override;
  std::string name() const override { return "NaNInjection"; }

 private:
  std::size_t stride_;
};

}  // namespace zka::attack
