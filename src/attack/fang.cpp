#include "attack/fang.h"

#include <algorithm>
#include <cmath>

#include "defense/krum.h"
#include "util/check.h"

namespace zka::attack {

Update FangAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  const auto& benign = *ctx.benign_updates;
  const std::size_t dim = ctx.global_model.size();
  const std::size_t nb = benign.size();

  Update crafted(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    float lo = benign[0][i];
    float hi = benign[0][i];
    double sum = 0.0;
    for (std::size_t k = 0; k < nb; ++k) {
      const float v = benign[k][i];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += static_cast<double>(v);
    }
    const double mean = sum / static_cast<double>(nb);
    const double direction = mean - static_cast<double>(ctx.global_model[i]);
    const double b = rng_.uniform(1.0, 2.0);
    if (direction >= 0.0) {
      // Benign updates increase this coordinate: submit below the minimum.
      crafted[i] = static_cast<float>(lo >= 0.0f
                                          ? static_cast<double>(lo) / b
                                          : static_cast<double>(lo) * b);
    } else {
      // Benign updates decrease it: submit above the maximum.
      crafted[i] = static_cast<float>(hi >= 0.0f
                                          ? static_cast<double>(hi) * b
                                          : static_cast<double>(hi) / b);
    }
  }
  return crafted;
}

Update FangKrumAttack::craft(const AttackContext& ctx) {
  validate_context(*this, ctx);
  ZKA_CHECK(lambda_init_ > 0.0 && lambda_threshold_ > 0.0 &&
                lambda_threshold_ <= lambda_init_,
            "Fang-Krum: bad lambda search range [%g, %g]", lambda_threshold_,
            lambda_init_);
  const auto& benign = *ctx.benign_updates;
  const std::size_t dim = ctx.global_model.size();

  // Direction s: where the benign consensus wants each coordinate to go.
  Update direction(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    double mean = 0.0;
    for (const Update& u : benign) mean += static_cast<double>(u[i]);
    mean /= static_cast<double>(benign.size());
    const double d = mean - static_cast<double>(ctx.global_model[i]);
    direction[i] = d > 0.0 ? 1.0f : (d < 0.0 ? -1.0f : 0.0f);
  }

  const std::size_t copies =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   ctx.num_malicious_selected));
  defense::MultiKrum krum(defense_f_, 1);
  auto crafted_at = [&](double lambda) {
    Update u(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      u[i] = ctx.global_model[i] -
             static_cast<float>(lambda) * direction[i];
    }
    return u;
  };
  auto krum_picks_crafted = [&](const Update& crafted) {
    std::vector<Update> pool(copies, crafted);
    pool.insert(pool.end(), benign.begin(), benign.end());
    const auto selected = krum.select(pool);
    return !selected.empty() && selected.front() < copies;
  };

  double lambda = lambda_init_;
  while (lambda >= lambda_threshold_ &&
         !krum_picks_crafted(crafted_at(lambda))) {
    lambda /= 2.0;
  }
  last_lambda_ = lambda >= lambda_threshold_ ? lambda : 0.0;
  // Even when Krum cannot be fooled, submit the smallest-step variant:
  // a mild push in the reverse direction.
  return crafted_at(std::max(lambda, lambda_threshold_));
}

}  // namespace zka::attack
