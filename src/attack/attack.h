// Untargeted-attack interface.
//
// Per the paper's threat model (Sec. III), all malicious clients selected in
// a round submit the *same* crafted update, computed by one adversarial
// party. The simulator therefore calls craft() once per round and clones
// the result. Zero-knowledge attacks (ZKA-R/ZKA-G, in src/core) see only
// the current and previous global models; the omniscient baselines (LIE,
// Fang, Min-Max) additionally receive the round's benign updates, matching
// their stronger published threat models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zka::attack {

using Update = std::vector<float>;

struct AttackContext {
  /// Current global model w(t), as distributed by the server.
  std::span<const float> global_model;
  /// Previous global model w(t-1); equals w(t) in the first round.
  std::span<const float> prev_global_model;
  /// Benign updates of this round; nullptr/empty unless the attack declares
  /// needs_benign_updates(). Zero-knowledge attacks must not read this.
  const std::vector<Update>* benign_updates = nullptr;
  /// Round index, starting at 0.
  std::int64_t round = 0;
  /// Number of clients selected this round (K).
  std::int64_t num_selected = 0;
  /// Number of malicious clients among the selected (m).
  std::int64_t num_malicious_selected = 0;
  /// The task's public training configuration (known to everyone).
  float learning_rate = 0.01f;
  /// Median sample count reported by this round's sampled benign clients
  /// (the server does not verify client-reported counts, so this is what a
  /// weight-blending attacker would mimic). 1 when no benign client was
  /// sampled. Input to Attack::reported_weight.
  std::int64_t benign_median_weight = 1;
};

class Attack {
 public:
  virtual ~Attack() = default;

  /// Crafts the malicious update for this round.
  virtual Update craft(const AttackContext& ctx) = 0;

  /// True for omniscient baselines that require ctx.benign_updates.
  virtual bool needs_benign_updates() const noexcept { return false; }

  /// The FedAvg sample count every sybil reports alongside the crafted
  /// update. Sample counts are client-reported and unverifiable in FL, so
  /// this is an attacker-chosen quantity, not a property of the (possibly
  /// empty) shards the adversary's clients happen to own — the simulator
  /// used to silently substitute max(shard_size, 1), fabricating a weight
  /// the paper's threat model never states. The default blends in with the
  /// round's benign population by reporting its median sample count.
  virtual std::int64_t reported_weight(const AttackContext& ctx) const {
    return ctx.benign_median_weight;
  }

  virtual std::string name() const = 0;
};

/// Throws std::invalid_argument if an omniscient attack is invoked without
/// benign updates, or a context field is inconsistent.
void validate_context(const Attack& attack, const AttackContext& ctx);

}  // namespace zka::attack
